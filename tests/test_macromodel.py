"""Tests for Foster synthesis of driving-point admittances."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem
from repro.core.macromodel import synthesize_rc_load
from repro.errors import ApproximationError
from repro.papercircuits import fig9_grounded_resistor, random_rc_tree, rc_ladder
from repro.timing import driving_point_moments


def exact_admittance(system, source, omegas):
    row = system.index.current(source)
    values = []
    for omega in omegas:
        x = np.linalg.solve(system.G + 1j * omega * system.C, system.B[:, 0])
        values.append(-x[row])
    return np.array(values)


class TestSynthesis:
    def test_single_rc_is_recovered_exactly(self, single_rc):
        system = MnaSystem(single_rc)
        net = synthesize_rc_load(system, "Vin", 1)
        assert net.order == 1
        assert net.y0 == 0.0
        branch = net.branches[0]
        assert branch.resistance == pytest.approx(1e3, rel=1e-9)
        assert branch.capacitance == pytest.approx(1e-12, rel=1e-9)

    def test_total_capacitance_preserved(self):
        circuit = rc_ladder(20, resistance=200.0, capacitance=100e-15)
        net = synthesize_rc_load(MnaSystem(circuit, sparse=False), "Vin", 3)
        assert net.total_capacitance == pytest.approx(2e-12, rel=1e-9)

    def test_moments_roundtrip_through_synthesised_circuit(self):
        circuit = rc_ladder(12)
        system = MnaSystem(circuit)
        original = driving_point_moments(system, "Vin", 7)
        net = synthesize_rc_load(system, "Vin", 3)
        clone = MnaSystem(net.as_circuit())
        reproduced = driving_point_moments(clone, "VF_probe", 7)
        np.testing.assert_allclose(reproduced[1:], original[1:], rtol=1e-8)

    def test_admittance_accuracy_over_frequency(self):
        circuit = rc_ladder(20, resistance=200.0, capacitance=100e-15)
        system = MnaSystem(circuit, sparse=False)
        net = synthesize_rc_load(system, "Vin", 3)
        omegas = np.logspace(6, 9.5, 30)
        exact = exact_admittance(system, "Vin", omegas)
        model = net.admittance(1j * omegas)
        assert (np.abs(model - exact) / np.abs(exact)).max() < 0.01

    def test_grounded_resistor_dc_conductance(self):
        net = synthesize_rc_load(MnaSystem(fig9_grounded_resistor()), "Vin", 2)
        assert net.y0 == pytest.approx(1.0 / 7.0, rel=1e-9)
        circuit = net.as_circuit()
        assert any(e.name == "RF0" for e in circuit)

    def test_branches_are_passive(self):
        for seed in (1, 4, 9):
            circuit = random_rc_tree(10, seed=seed)
            net = synthesize_rc_load(MnaSystem(circuit), "Vin", 2)
            for branch in net.branches:
                assert branch.resistance > 0 and branch.capacitance > 0
                assert branch.pole < 0

    def test_synthesised_circuit_poles_match_fit(self):
        circuit = rc_ladder(8)
        system = MnaSystem(circuit)
        net = synthesize_rc_load(system, "Vin", 2)
        from repro import circuit_poles

        clone_poles = np.sort(circuit_poles(MnaSystem(net.as_circuit())).poles.real)
        fit_poles = np.sort([b.pole for b in net.branches])
        np.testing.assert_allclose(clone_poles, fit_poles, rtol=1e-9)

    def test_overorder_rejected_cleanly(self, single_rc):
        system = MnaSystem(single_rc)
        with pytest.raises(Exception):
            synthesize_rc_load(system, "Vin", 3)

    def test_deck_exportable(self):
        from repro.circuit.writer import write_netlist
        from repro import parse_netlist

        net = synthesize_rc_load(MnaSystem(rc_ladder(10)), "Vin", 2)
        deck = write_netlist(net.as_circuit())
        restored = parse_netlist(deck)
        assert len(restored.circuit.capacitors) == 2
