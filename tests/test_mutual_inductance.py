"""Tests for mutual inductance (K elements): stamps, physics, parsing."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem, Step, circuit_poles, parse_netlist, simulate
from repro.core.driver import AweAnalyzer
from repro.errors import CircuitError
from repro.waveform import l2_error


def coupled_tanks(k=0.3, R=20.0, L=10e-9, C=1e-12):
    """Two identical series-RLC branches sharing flux through k."""
    ckt = Circuit("coupled tanks")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "a1", R)
    ckt.add_inductor("L1", "a1", "b1", L)
    ckt.add_capacitor("C1", "b1", "0", C)
    ckt.add_resistor("R2", "b2", "0", R)      # the victim tank, grounded
    ckt.add_inductor("L2", "a2", "b2", L)
    ckt.add_resistor("Rg", "a2", "0", 1e6)    # DC reference for the victim
    ckt.add_capacitor("C2", "a2", "0", C)
    ckt.add_mutual_inductance("K12", "L1", "L2", k)
    return ckt


class TestConstruction:
    def test_coupling_range_enforced(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0")
        ckt.add_inductor("L1", "a", "b", 1e-9)
        ckt.add_inductor("L2", "b", "0", 1e-9)
        with pytest.raises(CircuitError, match="passive"):
            ckt.add_mutual_inductance("K1", "L1", "L2", 1.0)

    def test_references_must_be_inductors(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0")
        ckt.add_resistor("R1", "a", "b", 1.0)
        ckt.add_inductor("L1", "b", "0", 1e-9)
        with pytest.raises(CircuitError, match="not an inductor"):
            ckt.add_mutual_inductance("K1", "L1", "R1", 0.5)

    def test_self_coupling_rejected(self):
        from repro.circuit.elements import MutualInductance

        with pytest.raises(CircuitError):
            MutualInductance("K1", "L1", "L1", 0.5)

    def test_duplicate_name_rejected(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0")
        ckt.add_inductor("L1", "a", "b", 1e-9)
        ckt.add_inductor("L2", "b", "0", 1e-9)
        ckt.add_mutual_inductance("K1", "L1", "L2", 0.5)
        with pytest.raises(CircuitError, match="duplicate"):
            ckt.add_mutual_inductance("K1", "L1", "L2", 0.2)

    def test_copy_preserves_couplings(self):
        ckt = coupled_tanks()
        assert len(ckt.copy().mutual_inductances) == 1

    def test_mutual_value(self):
        from repro.circuit.elements import MutualInductance

        k = MutualInductance("K1", "L1", "L2", 0.5)
        assert k.mutual(4e-9, 9e-9) == pytest.approx(3e-9)


class TestStamp:
    def test_symmetric_offdiagonal(self):
        ckt = coupled_tanks(k=0.4)
        system = MnaSystem(ckt)
        j1, j2 = system.index.current("L1"), system.index.current("L2")
        assert system.C[j1, j2] == pytest.approx(-0.4 * 10e-9)
        assert system.C[j1, j2] == system.C[j2, j1]


class TestPhysics:
    def test_split_modes_of_symmetric_lc_pair(self):
        # Two identical LC tanks driven symmetrically: modes at
        # ω± = 1/sqrt((1 ± k)·L·C).
        k, L, C = 0.25, 10e-9, 1e-12
        ckt = Circuit("symmetric pair")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("Rs", "in", "m", 1e-3)
        ckt.add_inductor("L1", "m", "o1", L)
        ckt.add_capacitor("C1", "o1", "0", C)
        ckt.add_inductor("L2", "m", "o2", L)
        ckt.add_capacitor("C2", "o2", "0", C)
        ckt.add_mutual_inductance("K12", "L1", "L2", k)
        poles = circuit_poles(MnaSystem(ckt)).poles
        frequencies = np.unique(np.round(np.abs(poles.imag), 0))
        frequencies = frequencies[frequencies > 0]
        expected = sorted(
            [1.0 / np.sqrt((1 + k) * L * C), 1.0 / np.sqrt((1 - k) * L * C)]
        )
        np.testing.assert_allclose(sorted(frequencies)[:2], expected, rtol=1e-3)

    def test_zero_coupling_decouples(self):
        with_k = coupled_tanks(k=1e-12)
        without = coupled_tanks(k=1e-12)
        without._couplings.clear()
        def canonical(poles):
            return sorted(poles, key=lambda p: (round(p.real, 3), round(p.imag, 3)))

        p1 = canonical(circuit_poles(MnaSystem(with_k)).poles)
        p2 = canonical(circuit_poles(MnaSystem(without)).poles)
        np.testing.assert_allclose(p1, p2, rtol=1e-6)

    def test_victim_sees_induced_voltage(self):
        ckt = coupled_tanks(k=0.4)
        result = simulate(ckt, {"Vin": Step(0, 5)}, 2e-8, refine_tolerance=5e-4)
        victim = result.voltage("b2")
        assert np.abs(victim.values).max() > 0.05  # real magnetic crosstalk
        assert abs(victim.values[-1]) < 0.02       # and it dies back down

    def test_awe_matches_transient_with_coupling(self):
        ckt = coupled_tanks(k=0.4)
        stimuli = {"Vin": Step(0, 5)}
        reference = simulate(ckt, stimuli, 2e-8, refine_tolerance=5e-4).voltage("b1")
        response = AweAnalyzer(ckt, stimuli, max_order=8).response("b1", error_target=0.02)
        candidate = response.waveform.to_waveform(reference.times)
        swing = np.abs(reference.values).max()
        assert np.abs(candidate.values - reference.values).max() < 0.05 * swing


class TestParser:
    def test_k_card(self):
        deck = parse_netlist(
            "V1 in 0 5\nL1 in a 10n\nC1 a 0 1p\nL2 b 0 10n\nR2 b 0 50\n"
            "K12 L1 L2 0.3\n",
            title_line=False,
        )
        couplings = deck.circuit.mutual_inductances
        assert len(couplings) == 1
        assert couplings[0].coupling == pytest.approx(0.3)

    def test_k_card_before_inductor_rejected(self):
        with pytest.raises(Exception):
            parse_netlist("K12 L1 L2 0.3\nL1 a 0 1n\nL2 b 0 1n\n", title_line=False)
