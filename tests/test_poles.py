"""Tests for exact pole extraction and the modal reference solution."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem, circuit_poles
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.analysis.poles import exact_homogeneous_response


class TestCircuitPoles:
    def test_single_rc(self, single_rc):
        poles = circuit_poles(MnaSystem(single_rc)).poles
        assert len(poles) == 1
        assert poles[0] == pytest.approx(-1e9)

    def test_ladder_pole_count(self, rc_ladder3):
        assert circuit_poles(MnaSystem(rc_ladder3)).order == 3

    def test_ladder_poles_match_analytic(self, rc_ladder3):
        # Uniform 3-ladder eigenvalues: -(2 - 2cos((2k-1)π/7))/RC.
        poles = np.sort(circuit_poles(MnaSystem(rc_ladder3)).poles.real)
        rc = 1e3 * 1e-12
        expected = np.sort(
            [-(2 - 2 * np.cos((2 * k - 1) * np.pi / 7)) / rc for k in (1, 2, 3)]
        )
        np.testing.assert_allclose(poles, expected, rtol=1e-9)

    def test_rlc_complex_pair(self, series_rlc):
        poles = circuit_poles(MnaSystem(series_rlc)).poles
        assert len(poles) == 2
        assert poles[0] == pytest.approx(np.conj(poles[1]))
        # Series RLC: Re = -R/2L, |p|² = 1/LC.
        assert poles[0].real == pytest.approx(-10.0 / (2 * 10e-9))
        assert abs(poles[0]) ** 2 == pytest.approx(1.0 / (10e-9 * 1e-12), rel=1e-9)

    def test_pure_resistive_circuit_has_no_poles(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", 1.0)
        ckt.add_resistor("R", "a", "0", 1.0)
        assert circuit_poles(MnaSystem(ckt)).order == 0

    def test_pole_count_never_exceeds_state_count(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        decomposition = circuit_poles(system)
        assert decomposition.order <= floating_node_circuit.state_count

    def test_floating_node_has_zero_pole(self, floating_node_circuit):
        poles = circuit_poles(MnaSystem(floating_node_circuit)).poles
        # Trapped charge = a mode at exactly s = 0.
        assert np.abs(poles).min() < 1e-3 * np.abs(poles).max()

    def test_dominance_ordering(self, rc_ladder3):
        poles = circuit_poles(MnaSystem(rc_ladder3)).sorted_by_dominance()
        assert np.all(np.diff(np.abs(poles)) >= 0)

    def test_all_poles_stable(self, series_rlc):
        poles = circuit_poles(MnaSystem(series_rlc)).poles
        assert np.all(poles.real < 0)


class TestExactHomogeneousResponse:
    def test_matches_analytic_rc_decay(self, single_rc):
        system = MnaSystem(single_rc)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(single_rc, system, state, {"Vin": 5.0})
        x_final = dc_operating_point(system, {"Vin": 5.0})
        response = exact_homogeneous_response(system, x0 - x_final)
        t = np.linspace(0, 5e-9, 100)
        values = response.evaluate(system.index.node("1"), t)
        np.testing.assert_allclose(values, -5.0 * np.exp(-t / 1e-9), atol=1e-9)

    def test_initial_value_matches(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(rc_ladder3, system, state, {"Vin": 5.0})
        x_final = dc_operating_point(system, {"Vin": 5.0})
        y0 = x0 - x_final
        response = exact_homogeneous_response(system, y0)
        for node in ("1", "2", "3"):
            row = system.index.node(node)
            assert response.evaluate(row, np.array([0.0]))[0] == pytest.approx(y0[row])

    def test_residual_small_for_consistent_state(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(rc_ladder3, system, state, {"Vin": 5.0})
        x_final = dc_operating_point(system, {"Vin": 5.0})
        response = exact_homogeneous_response(system, x0 - x_final)
        assert response.residual < 1e-10

    def test_oscillatory_response_is_real(self, series_rlc):
        system = MnaSystem(series_rlc)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(series_rlc, system, state, {"Vin": 5.0})
        x_final = dc_operating_point(system, {"Vin": 5.0})
        response = exact_homogeneous_response(system, x0 - x_final)
        values = response.evaluate(system.index.node("b"), np.linspace(0, 3e-9, 64))
        assert values.dtype == np.float64
        # Underdamped: must cross zero (ring above the final value).
        assert values.max() > 0.0

    def test_component_residues_reconstruct(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(rc_ladder3, system, state, {"Vin": 5.0})
        x_final = dc_operating_point(system, {"Vin": 5.0})
        response = exact_homogeneous_response(system, x0 - x_final)
        row = system.index.node("3")
        poles, residues = response.component_residues(row)
        t = np.linspace(0, 1e-8, 50)
        direct = sum(k * np.exp(p * t) for p, k in zip(poles, residues)).real
        np.testing.assert_allclose(direct, response.evaluate(row, t), atol=1e-9)
