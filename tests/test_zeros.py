"""Tests for transfer and response zeros."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem, circuit_poles
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.analysis.poles import exact_homogeneous_response
from repro.analysis.zeros import response_zeros, transfer_zeros
from repro.errors import AnalysisError
from repro.papercircuits import fig16_stiff_rc_tree


@pytest.fixture
def bridged_t() -> Circuit:
    """A bridged-T: the feed-through cap creates a complex zero pair."""
    ckt = Circuit("bridged T")
    ckt.add_voltage_source("V", "in", "0")
    ckt.add_resistor("R1", "in", "m", 1e3)
    ckt.add_capacitor("C1", "m", "0", 1e-12)
    ckt.add_resistor("R2", "m", "o", 1e3)
    ckt.add_capacitor("Cb", "in", "o", 0.2e-12)
    ckt.add_capacitor("C2", "o", "0", 1e-12)
    return ckt


class TestTransferZeros:
    def test_ladder_has_no_zeros(self, rc_ladder3):
        zeros = transfer_zeros(MnaSystem(rc_ladder3), "Vin", "3")
        assert len(zeros) == 0

    def test_bridged_t_zero_pair(self, bridged_t):
        zeros = transfer_zeros(MnaSystem(bridged_t), "V", "o")
        assert len(zeros) == 2
        assert zeros[0] == pytest.approx(np.conj(zeros[1]))

    def test_zeros_annihilate_transfer(self, bridged_t):
        system = MnaSystem(bridged_t)
        zeros = transfer_zeros(system, "V", "o")
        row = system.index.node("o")
        for zero in zeros:
            x = np.linalg.solve(system.G + zero * system.C, system.B[:, 0])
            assert abs(x[row]) < 1e-12

    def test_ground_rejected(self, rc_ladder3):
        with pytest.raises(AnalysisError):
            transfer_zeros(MnaSystem(rc_ladder3), "Vin", "0")

    def test_intermediate_node_has_zeros(self, rc_ladder3):
        # Looking INTO the ladder (node 1), the downstream network creates
        # zeros in the transfer (it is no longer a simple cascade).
        zeros = transfer_zeros(MnaSystem(rc_ladder3), "Vin", "1")
        assert len(zeros) == 2
        assert np.all(zeros.real < 0)


class TestResponseZeros:
    def homogeneous_state(self, circuit, v=5.0):
        system = MnaSystem(circuit)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(circuit, system, state, {"Vin": v})
        x_final = dc_operating_point(system, {"Vin": v})
        return system, x0 - x_final

    def test_ic_shifts_modal_excitation(self):
        """The paper's Table I mechanism: V(C6)=5 changes which natural
        frequencies the initial state excites — the pole-3 residue at the
        output grows several-fold, which is why the second-order fit
        migrates from pole 2 toward pole 3."""

        def residues(ic):
            circuit = fig16_stiff_rc_tree(sharing_voltage=ic)
            system, y0 = self.homogeneous_state(circuit)
            modal = exact_homogeneous_response(system, y0, circuit_poles(system))
            poles, res = modal.component_residues(system.index.node("7"))
            order = np.argsort(np.abs(poles))
            return res[order].real

        base = residues(None)
        shared = residues(5.0)
        # Pole 3's relative weight grows by at least 3x with the IC.
        assert abs(shared[2]) / abs(shared[1]) > 3 * abs(base[2]) / abs(base[1])

    def test_response_zeros_move_with_ic(self):
        circuit0 = fig16_stiff_rc_tree()
        circuit1 = fig16_stiff_rc_tree(sharing_voltage=5.0)
        system0, y00 = self.homogeneous_state(circuit0)
        system1, y01 = self.homogeneous_state(circuit1)
        zeros0 = response_zeros(system0, y00, "7")
        zeros1 = response_zeros(system1, y01, "7")
        assert len(zeros0) > 0 and len(zeros1) > 0
        # The dominant zero moves when the IC changes.
        assert abs(zeros0[0] - zeros1[0]) > 1e-3 * abs(zeros0[0])

    def test_zero_cancellation_explains_low_order_success(self, rc_ladder3):
        # Step-response zeros of the ladder sit near poles 2 and 3 — the
        # partial cancellations that make a 1-pole model so effective.
        system, y0 = self.homogeneous_state(rc_ladder3)
        zeros = response_zeros(system, y0, "3")
        poles = np.sort(circuit_poles(system).poles.real)[::-1]
        assert len(zeros) == 2
        for zero, pole in zip(np.sort(zeros.real)[::-1], poles[1:]):
            assert abs(zero - pole) < 0.6 * abs(pole)
