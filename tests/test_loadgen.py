"""The loadgen driver (`repro.gateway.loadgen`).

Mixes must be seeded and replayable (a benchmark that can't be re-run
byte-identically can't be compared), the synthetic decks must be real
parseable circuits with distinct content addresses, and the driver must
measure an actual server truthfully — including failures.
"""

import pytest

from repro.circuit.parser import parse_netlist
from repro.gateway.loadgen import (
    MIXES,
    _percentile,
    build_mix,
    coalesced_delta,
    run_loadgen,
    seeded_chain_deck,
)
from repro.service import ServiceServer
from repro.service.canon import request_key


class TestSeededDecks:
    def test_deck_parses_and_names_its_seed(self):
        deck_text, node = seeded_chain_deck(42, sections=5)
        deck = parse_netlist(deck_text)
        assert "seed=42" in deck_text
        assert node == "n5"
        # 5 RC sections + the source
        assert len([e for e in deck.circuit
                    if e.name.startswith("R")]) == 5

    def test_same_seed_same_deck_different_seed_different_key(self):
        first, _ = seeded_chain_deck(7)
        again, _ = seeded_chain_deck(7)
        other, _ = seeded_chain_deck(8)
        assert first == again
        assert first != other

        def key_of(text, node):
            deck = parse_netlist(text)
            return request_key(deck.circuit, deck.stimuli, [node])

        assert (key_of(*seeded_chain_deck(7))
                != key_of(*seeded_chain_deck(8)))


class TestBuildMix:
    def test_mix_names(self):
        assert set(MIXES) == {"miss", "hot", "mixed"}
        with pytest.raises(ValueError):
            build_mix("lukewarm", 8)

    def test_replayable(self):
        for mix in MIXES:
            assert (build_mix(mix, 24, concurrency=8, seed=3)
                    == build_mix(mix, 24, concurrency=8, seed=3))
        assert (build_mix("miss", 24, seed=3)
                != build_mix("miss", 24, seed=4))

    def test_miss_mix_is_all_unique(self):
        payloads = build_mix("miss", 24, concurrency=8, seed=0)
        assert len(payloads) == 24
        assert len({p["deck"] for p in payloads}) == 24

    def test_hot_mix_repeats_within_rounds(self):
        payloads = build_mix("hot", 24, concurrency=8, seed=0)
        assert len(payloads) == 24
        # one deck per round of `concurrency` requests
        assert len({p["deck"] for p in payloads}) == 3
        first_round = {p["deck"] for p in payloads[:8]}
        assert len(first_round) == 1

    def test_mixed_mix_alternates(self):
        payloads = build_mix("mixed", 32, concurrency=8, seed=0)
        assert len(payloads) == 32
        unique = len({p["deck"] for p in payloads})
        # two miss rounds (8 fresh each) + two hot rounds (1 each)
        assert unique == 18

    def test_request_count_not_divisible_by_concurrency(self):
        payloads = build_mix("hot", 10, concurrency=8, seed=0)
        assert len(payloads) == 10


class TestPercentile:
    """The convention is numpy.percentile's linear interpolation: the
    percentile sits at fractional rank ``fraction * (n - 1)``.  At
    n >= 100 the grid is fine enough that round percentiles land on
    samples; at small n the interpolated value must match numpy exactly
    rather than snap to the nearest rank."""

    def test_large_n_round_percentiles_land_on_samples(self):
        values = [float(v) for v in range(101)]  # 0.0 .. 100.0
        assert _percentile(values, 0.50) == 50.0
        assert _percentile(values, 0.99) == 99.0
        assert _percentile(values, 1.00) == 100.0
        assert _percentile([5.0], 0.99) == 5.0
        assert _percentile([], 0.5) == 0.0

    def test_small_n_matches_numpy_linear_interpolation(self):
        import numpy as np

        for values in ([1.0, 2.0], [1.0, 2.0, 10.0],
                       [3.0, 5.0, 8.0, 21.0, 34.0],
                       [float(v) ** 2 for v in range(8)]):
            for fraction in (0.25, 0.50, 0.90, 0.99):
                assert _percentile(values, fraction) == pytest.approx(
                    float(np.percentile(values, fraction * 100.0)),
                    rel=1e-12,
                ), (values, fraction)

    def test_small_n_p99_does_not_snap_to_the_maximum(self):
        # 8 samples with a 90 ms gap at the tail: nearest-rank p99 used
        # to return the 100 ms maximum; linear interpolation reports the
        # tail position between the last two samples.
        values = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0, 100.0]
        p99 = _percentile(values, 0.99)
        assert p99 < 100.0
        assert p99 == pytest.approx(10.0 + 0.93 * 90.0, rel=1e-12)

    def test_fraction_is_clamped(self):
        values = [1.0, 2.0, 3.0]
        assert _percentile(values, -0.5) == 1.0
        assert _percentile(values, 1.5) == 3.0


class TestRunLoadgen:
    def test_measures_a_real_daemon(self):
        with ServiceServer(port=0, workers=1) as server:
            payloads = build_mix("hot", 8, concurrency=4, seed=1,
                                 sections=2)
            # Sequential on purpose: a plain daemon has no coalescing,
            # so concurrent identical misses would race the cache store
            # and the hit count would be timing-dependent.
            outcome = run_loadgen(server.url, payloads, concurrency=1)
        assert outcome["requests"] == 8
        assert outcome["failed"] == 0
        assert outcome["failures"] == []
        assert outcome["rps"] > 0
        assert 0 < outcome["p50_ms"] <= outcome["p99_ms"] <= outcome["max_ms"]
        # 8 requests, 2 unique decks (hot mix, 4 per round): run one at
        # a time, every repeat after a round's first is a cache hit.
        assert outcome["cache_hits"] == 6

    def test_failures_are_counted_not_raised(self):
        payloads = build_mix("miss", 3, concurrency=2, seed=0, sections=2)
        outcome = run_loadgen("http://127.0.0.1:9", payloads,
                              concurrency=2, retries=0, timeout=2.0)
        assert outcome["failed"] == 3
        assert len(outcome["failures"]) == 3
        assert all("error" in f and "index" in f
                   for f in outcome["failures"])

    def test_coalesced_delta(self):
        before = {"coalesced_requests": 3}
        after = {"coalesced_requests": 10}
        assert coalesced_delta(before, after) == 7
        assert coalesced_delta({}, {}) == 0  # plain daemon metrics
