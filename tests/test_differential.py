"""Property-based differential test suite.

Randomized-but-seeded circuits, three differential oracles:

* **AWE vs transient** — on random RC trees and RC meshes, a high-order
  AWE response must match the converged TR-BDF2 transient reference
  (`repro.simulate`) within a relative L2 bound (the paper's own accuracy
  measure, Sec. 3.4);
* **batch vs sequential** — :class:`BatchEngine` results must be
  *bit-identical* to per-job :class:`AweAnalyzer` runs for the same jobs,
  inline and through the process pool;
* **superposition** — the event-decomposed AWE waveform for a ramp input
  must agree with the transient reference, exercising the batched
  multi-subproblem moment recursion differentially.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro import AweAnalyzer, AweJob, BatchEngine
from repro.analysis.sources import Ramp
from repro.papercircuits import random_rc_tree, rc_mesh
from tests.strategies import (
    L2_BOUND,
    STIM,
    awe_vs_transient_l2,
    differential_settings as _differential_settings,
)


class TestAweMatchesTransient:
    @_differential_settings
    @given(
        nodes=st.integers(min_value=4, max_value=14),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_random_rc_tree(self, nodes, seed):
        circuit = random_rc_tree(nodes, seed=seed)
        error = awe_vs_transient_l2(
            circuit, STIM, str(nodes), error_target=0.005
        )
        assert error < L2_BOUND

    @_differential_settings
    @given(
        rows=st.integers(min_value=2, max_value=4),
        cols=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_random_rc_mesh(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        circuit = rc_mesh(
            rows,
            cols,
            resistance=float(rng.uniform(50.0, 300.0)),
            capacitance=float(rng.uniform(20e-15, 200e-15)),
        )
        error = awe_vs_transient_l2(
            circuit, STIM, f"n{rows - 1}_{cols - 1}", error_target=0.005
        )
        assert error < L2_BOUND

    @_differential_settings
    @given(
        nodes=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_ramp_superposition(self, nodes, seed):
        """Ramp input → multiple subproblems → the batched multi-RHS
        moment recursion feeds the event superposition of Sec. 4.3."""
        circuit = random_rc_tree(nodes, seed=seed)
        stimuli = {"Vin": Ramp(0.0, 5.0, rise_time=2e-10)}
        error = awe_vs_transient_l2(
            circuit, stimuli, str(nodes), error_target=0.005
        )
        assert error < L2_BOUND


class TestBatchBitIdentical:
    def _jobs(self, n_circuits=6, nodes_per_circuit=3, tree_nodes=15):
        jobs = []
        for seed in range(n_circuits):
            circuit = random_rc_tree(tree_nodes, seed=100 + seed)
            picks = np.random.default_rng(seed).choice(
                np.arange(1, tree_nodes + 1), size=nodes_per_circuit, replace=False
            )
            jobs.append(
                AweJob(
                    circuit,
                    tuple(str(int(p)) for p in picks),
                    stimuli=STIM,
                    order=3,
                )
            )
        return jobs

    def _assert_identical(self, jobs, results):
        times = np.linspace(0.0, 20e-9, 250)
        for job, result in zip(jobs, results):
            assert result.ok, result.error
            analyzer = AweAnalyzer(job.circuit, job.stimuli, max_order=job.max_order)
            for node in job.nodes:
                expected = analyzer.response(node, order=job.order)
                actual = result.responses[node]
                assert np.array_equal(expected.poles, actual.poles)
                assert np.array_equal(
                    expected.waveform.evaluate(times),
                    actual.waveform.evaluate(times),
                )
                # delay_50 needs a settling waveform; a low fixed order can
                # leave a borderline-unstable fit on some random trees, in
                # which case the exact pole equality above already covers it.
                if expected.waveform.is_stable:
                    assert expected.delay_50() == actual.delay_50()

    def test_inline_engine_bit_identical(self):
        jobs = self._jobs()
        results = BatchEngine().run(jobs, workers=1)
        self._assert_identical(jobs, results)

    def test_process_pool_bit_identical(self):
        """Crossing a process boundary (pickling circuits out, responses
        back) must not perturb a single bit of the results."""
        jobs = self._jobs(n_circuits=4)
        results = BatchEngine(workers=4).run(jobs)
        self._assert_identical(jobs, results)

    def test_worker_count_invariance(self):
        jobs = self._jobs(n_circuits=4)
        inline = BatchEngine().run(jobs, workers=1)
        pooled = BatchEngine().run(jobs, workers=2)
        times = np.linspace(0.0, 20e-9, 250)
        for a, b in zip(inline, pooled):
            assert a.ok and b.ok
            for node in a.responses:
                assert np.array_equal(a.responses[node].poles, b.responses[node].poles)
                assert np.array_equal(
                    a.responses[node].waveform.evaluate(times),
                    b.responses[node].waveform.evaluate(times),
                )
