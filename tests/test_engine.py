"""Tests for the batch analysis engine (`repro.engine.batch`).

Covers the batch-vs-sequential contract (identical numbers, any worker
count), analyzer reuse across jobs on the same circuit, structured
failure records (a bad job never kills the batch), preemptive per-job
timeouts, and the instrumentation counters that make the multi-RHS
moment recursion observable.
"""

import numpy as np
import pytest

from repro import (
    AweAnalyzer,
    AweJob,
    BatchEngine,
    Circuit,
    Step,
)
from repro.engine import BatchResult
from repro.errors import CircuitError
from repro.papercircuits import random_rc_tree, rc_mesh

STIM = {"Vin": Step(0.0, 5.0)}


def sequential_responses(jobs):
    """The pre-engine way: one fresh analyzer per job."""
    out = []
    for job in jobs:
        analyzer = AweAnalyzer(job.circuit, job.stimuli, max_order=job.max_order)
        out.append(
            {
                node: analyzer.response(
                    node, order=job.order, error_target=job.error_target
                )
                for node in job.nodes
            }
        )
    return out


def assert_bit_identical(reference, result: BatchResult, times):
    assert result.ok, result.error
    assert set(result.responses) == set(reference)
    for node, response in result.responses.items():
        expected = reference[node]
        assert np.array_equal(expected.poles, response.poles)
        assert np.array_equal(
            expected.waveform.evaluate(times), response.waveform.evaluate(times)
        )
        assert expected.order == response.order


class TestAweJob:
    def test_string_node_promoted(self):
        job = AweJob(random_rc_tree(3, seed=0), "2", stimuli=STIM)
        assert job.nodes == ("2",)

    def test_default_label(self):
        job = AweJob(random_rc_tree(3, seed=0), ("1", "2"), stimuli=STIM)
        assert "random RC tree" in job.label and "1,2" in job.label

    def test_empty_nodes_rejected(self):
        with pytest.raises(CircuitError):
            AweJob(random_rc_tree(3, seed=0), (), stimuli=STIM)


class TestBatchEngineResults:
    def test_empty_run(self):
        assert BatchEngine().run([]) == []

    def test_rejects_non_jobs(self):
        with pytest.raises(CircuitError):
            BatchEngine().run(["not a job"])

    def test_matches_sequential_inline(self):
        circuits = [random_rc_tree(12, seed=s) for s in range(4)]
        jobs = [
            AweJob(c, (str(n),), stimuli=STIM, order=2)
            for c in circuits
            for n in (8, 12)
        ]
        reference = sequential_responses(jobs)
        results = BatchEngine().run(jobs, workers=1)
        times = np.linspace(0.0, 10e-9, 100)
        for expected, result in zip(reference, results):
            assert_bit_identical(expected, result, times)

    def test_matches_sequential_process_pool(self):
        circuits = [random_rc_tree(12, seed=s) for s in range(3)]
        jobs = [
            AweJob(c, (str(n),), stimuli=STIM, order=2)
            for c in circuits
            for n in (6, 12)
        ]
        reference = sequential_responses(jobs)
        results = BatchEngine(workers=3).run(jobs)
        times = np.linspace(0.0, 10e-9, 100)
        for expected, result in zip(reference, results):
            assert_bit_identical(expected, result, times)

    def test_results_in_input_order(self):
        a, b = random_rc_tree(6, seed=1), random_rc_tree(6, seed=2)
        # Interleave circuits so grouping must reorder internally.
        jobs = [
            AweJob(a, ("6",), stimuli=STIM, order=1, label="a0"),
            AweJob(b, ("6",), stimuli=STIM, order=1, label="b0"),
            AweJob(a, ("5",), stimuli=STIM, order=1, label="a1"),
            AweJob(b, ("5",), stimuli=STIM, order=1, label="b1"),
        ]
        results = BatchEngine().run(jobs)
        assert [r.label for r in results] == ["a0", "b0", "a1", "b1"]
        assert [r.index for r in results] == [0, 1, 2, 3]


class TestFailureIsolation:
    def test_bad_node_yields_failure_record(self):
        good = AweJob(random_rc_tree(5, seed=3), ("5",), stimuli=STIM, order=1)
        bad = AweJob(random_rc_tree(5, seed=4), ("nope",), stimuli=STIM)
        results = BatchEngine().run([bad, good])
        assert not results[0].ok
        assert results[0].error_type == "CircuitError"
        assert "nope" in results[0].error
        assert results[0].responses is None
        assert results[1].ok

    def test_singular_circuit_yields_failure_record(self):
        floating = Circuit("no ground path")
        floating.add_voltage_source("Vin", "in", "0")
        floating.add_resistor("R1", "in", "1", 1e3)
        floating.add_capacitor("C1", "1", "0", 1e-12)
        floating.add_resistor("Rdangling", "2", "3", 1e3)  # island
        good = AweJob(random_rc_tree(5, seed=5), ("5",), stimuli=STIM, order=1)
        results = BatchEngine().run(
            [AweJob(floating, ("1",), stimuli=STIM), good]
        )
        assert not results[0].ok and results[1].ok
        assert results[0].error_type in ("SingularCircuitError", "CircuitError")

    def test_failure_isolated_in_process_pool(self):
        good = AweJob(random_rc_tree(5, seed=3), ("5",), stimuli=STIM, order=1)
        bad = AweJob(random_rc_tree(5, seed=4), ("nope",), stimuli=STIM)
        results = BatchEngine(workers=2).run([bad, good])
        assert not results[0].ok and results[0].error_type == "CircuitError"
        assert results[1].ok


class TestTimeout:
    def test_per_job_timeout_becomes_failure_record(self):
        # ~3600 unknowns: analysis takes ≫ 20 ms even on the sparse
        # backend (the old 20x20 mesh dipped under the deadline once
        # stamping went sparse).
        big = rc_mesh(60, 60)
        fast = AweJob(random_rc_tree(4, seed=0), ("4",), stimuli=STIM, order=1)
        slow = AweJob(big, ("n59_59",), stimuli=STIM, order=4)
        results = BatchEngine().run([slow, fast], timeout=0.02)
        assert not results[0].ok
        assert results[0].error_type == "BatchTimeoutError"
        assert "timeout" in results[0].error
        # The fast job still completes (a few ms of analysis).
        assert results[1].ok

    def test_timeout_in_process_pool(self):
        big = rc_mesh(60, 60)
        results = BatchEngine(workers=2).run(
            [AweJob(big, ("n59_59",), stimuli=STIM, order=4)], timeout=0.02
        )
        assert not results[0].ok
        assert results[0].error_type == "BatchTimeoutError"

    def test_timed_out_job_then_good_job_in_same_chunk(self):
        # Both jobs share one circuit (one chunk, one reused analyzer).
        # The first asks for every mesh node with an impossible 1e-14
        # target (~1 s of per-node escalations, far past the deadline) and
        # is killed by the timer mid-group; the second, trivial job must
        # then still run under a correctly re-armed alarm and succeed.
        # Regression for the timeout path leaving the timer disarmed (or
        # stale) for the rest of the group once one job's deadline fired.
        big = rc_mesh(20, 20)
        nodes = tuple(cap.positive for cap in big.capacitors)  # all 400
        doomed = AweJob(big, nodes, stimuli=STIM,
                        error_target=1e-14, label="doomed")
        quick = AweJob(big, (nodes[0],), stimuli=STIM, order=1,
                       label="quick")
        results = BatchEngine().run([doomed, quick], timeout=0.25)
        assert not results[0].ok
        assert results[0].error_type == "BatchTimeoutError"
        assert results[1].ok, results[1].error

    def test_signal_state_restored_after_run(self):
        import signal

        before_handler = signal.getsignal(signal.SIGALRM)
        big = rc_mesh(60, 60)
        results = BatchEngine().run(
            [AweJob(big, ("n59_59",), stimuli=STIM, order=4)], timeout=0.02
        )
        assert not results[0].ok
        assert signal.getsignal(signal.SIGALRM) is before_handler
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_nested_deadline_rearms_outer_timer(self):
        # An inner _deadline must hand the leftover budget back to the
        # enclosing one: before the fix, arming the inner timer silently
        # cancelled the outer alarm for good.
        import time

        from repro.engine.batch import _deadline
        from repro.errors import BatchTimeoutError

        with pytest.raises(BatchTimeoutError):
            with _deadline(0.08):
                with _deadline(0.05):
                    pass  # inner completes instantly, must re-arm outer
                deadline = time.monotonic() + 2.0
                while time.monotonic() < deadline:
                    pass  # burn CPU until the outer alarm fires

    def test_sigterm_during_deadline_is_survivable(self):
        # The serve daemon's SIGTERM handler only flips a drain flag; a
        # job running under _deadline when the signal lands must finish
        # normally, and later runs must still enforce their budgets.
        import os
        import signal
        import threading

        seen = []
        before = signal.getsignal(signal.SIGTERM)
        signal.signal(signal.SIGTERM, lambda signum, frame: seen.append(signum))
        big = rc_mesh(60, 60)
        killer = threading.Timer(
            0.02, os.kill, args=(os.getpid(), signal.SIGTERM))
        try:
            killer.start()
            results = BatchEngine().run(
                [AweJob(big, ("n59_59",), stimuli=STIM, order=4)], timeout=30.0
            )
        finally:
            killer.join()
            signal.signal(signal.SIGTERM, before)
        assert seen == [signal.SIGTERM]
        assert results[0].ok, results[0].error
        # The deadline machinery is intact after the interruption.
        late = BatchEngine().run(
            [AweJob(big, ("n59_59",), stimuli=STIM, order=4)], timeout=0.02
        )
        assert late[0].error_type == "BatchTimeoutError"

    def test_nested_deadline_inner_timeout_preserves_outer(self):
        import signal
        import time

        from repro.engine.batch import _deadline
        from repro.errors import BatchTimeoutError

        with pytest.raises(BatchTimeoutError):
            with _deadline(0.5):
                try:
                    with _deadline(0.01):
                        deadline = time.monotonic() + 1.0
                        while time.monotonic() < deadline:
                            pass
                except BatchTimeoutError:
                    pass  # the inner timeout fired and was absorbed
                # The outer timer must still be live after the inner fired.
                assert signal.getitimer(signal.ITIMER_REAL)[0] > 0.0
                deadline = time.monotonic() + 2.0
                while time.monotonic() < deadline:
                    pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestInstrumentation:
    def test_analyzer_reuse_per_distinct_circuit(self):
        circuit = random_rc_tree(10, seed=7)
        other = random_rc_tree(10, seed=8)
        jobs = [
            AweJob(circuit, (str(n),), stimuli=STIM, order=2) for n in (4, 7, 10)
        ] + [AweJob(other, ("10",), stimuli=STIM, order=2)]
        engine = BatchEngine()
        results = engine.run(jobs)
        assert all(r.ok for r in results)
        stats = engine.stats()
        assert stats["jobs"] == 4
        assert stats["jobs_failed"] == 0
        assert stats["distinct_circuits"] == 2
        # One analyzer (and one LU factorisation) per distinct circuit,
        # not per job — the amortisation the batch engine exists for.
        assert stats["analyzers_built"] == 2
        assert stats["lu_factorizations"] == 2
        assert stats["responses"] == 4

    def test_stats_merged_from_pool_workers(self):
        circuits = [random_rc_tree(8, seed=s) for s in range(3)]
        engine = BatchEngine(workers=3)
        engine.run([AweJob(c, ("8",), stimuli=STIM, order=1) for c in circuits])
        stats = engine.stats()
        assert stats["lu_factorizations"] == 3
        assert stats["responses"] == 3
        assert stats["moment_solves"] > 0
        assert stats["batch_wall_time_s"] > 0.0

    def test_reset_stats(self):
        engine = BatchEngine()
        engine.run([AweJob(random_rc_tree(4, seed=1), ("4",), stimuli=STIM, order=1)])
        engine.reset_stats()
        assert engine.stats()["jobs"] == 0
        assert engine.stats()["lu_factorizations"] == 0
