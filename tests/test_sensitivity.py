"""Tests for delay sensitivities: adjoint vs closed form vs finite diff."""

import numpy as np
import pytest

from repro import Circuit
from repro.core.sensitivity import delay_sensitivities
from repro.errors import AnalysisError
from repro.papercircuits import fig4_rc_tree, fig9_grounded_resistor, random_rc_tree, rc_mesh
from repro.rctree import delay_gradient_by_node, elmore_delays


def finite_difference(circuit_factory, node, element, delta_rel=1e-6):
    """Central-difference dT/dx for one element value."""

    def delay_with(scale):
        circuit = circuit_factory()
        old = circuit[element]
        if hasattr(old, "resistance"):
            import dataclasses

            circuit.replace(dataclasses.replace(old, resistance=old.resistance * scale))
        else:
            import dataclasses

            circuit.replace(dataclasses.replace(old, capacitance=old.capacitance * scale))
        return delay_sensitivities(circuit, node, {"Vin": 5.0}).elmore_delay

    base = circuit_factory()[element]
    value = getattr(base, "resistance", None) or base.capacitance
    up = delay_with(1.0 + delta_rel)
    down = delay_with(1.0 - delta_rel)
    return (up - down) / (2.0 * delta_rel * value)


class TestAgainstClosedForm:
    def test_fig4_resistor_gradient(self):
        sens = delay_sensitivities(fig4_rc_tree(), "4", {"Vin": 5.0})
        d_r, d_c = delay_gradient_by_node(fig4_rc_tree(), "4")
        for name, expected in d_r.items():
            assert sens.d_resistance[name] == pytest.approx(expected, abs=1e-18)

    def test_fig4_capacitor_gradient(self):
        sens = delay_sensitivities(fig4_rc_tree(), "4", {"Vin": 5.0})
        _, d_c = delay_gradient_by_node(fig4_rc_tree(), "4")
        for name, expected in d_c.items():
            assert sens.d_capacitance[name] == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("seed", [5, 21])
    def test_random_trees_agree(self, seed):
        circuit = random_rc_tree(9, seed=seed)
        node = circuit.nodes[-1]
        sens = delay_sensitivities(circuit, node, {"Vin": 5.0})
        d_r, d_c = delay_gradient_by_node(circuit, node)
        for name in d_r:
            assert sens.d_resistance[name] == pytest.approx(d_r[name], rel=1e-9, abs=1e-20)
        for name in d_c:
            assert sens.d_capacitance[name] == pytest.approx(d_c[name], rel=1e-9, abs=1e-9)

    def test_closed_form_values_fig4(self):
        # Hand check on eq. 50: dT_D(4)/dR4 = C4; dT_D(4)/dC2 = R1.
        d_r, d_c = delay_gradient_by_node(fig4_rc_tree(), "4")
        assert d_r["R4"] == pytest.approx(0.1e-6)
        assert d_r["R1"] == pytest.approx(0.4e-6)  # all four caps
        assert d_r["R2"] == 0.0  # off-path
        assert d_c["C2"] == pytest.approx(1e3)  # shared path = R1
        assert d_c["C4"] == pytest.approx(3e3)  # R1+R3+R4


class TestAgainstFiniteDifference:
    @pytest.mark.parametrize("element", ["R1", "R4", "C2", "C4", "R5"])
    def test_grounded_resistor_circuit(self, element):
        # Fig. 9 is NOT a tree: the closed forms do not apply, the adjoint
        # must still be exact.
        sens = delay_sensitivities(fig9_grounded_resistor(), "4", {"Vin": 5.0})
        gradient = {**sens.d_resistance, **sens.d_capacitance}
        numeric = finite_difference(fig9_grounded_resistor, "4", element)
        assert gradient[element] == pytest.approx(numeric, rel=1e-4)

    @pytest.mark.parametrize("element", ["Rh0_0", "Rv0_1", "C1_1"])
    def test_mesh_circuit(self, element):
        factory = lambda: rc_mesh(2, 2)
        sens = delay_sensitivities(factory(), "n1_1", {"Vin": 5.0})
        gradient = {**sens.d_resistance, **sens.d_capacitance}
        numeric = finite_difference(factory, "n1_1", element)
        assert gradient[element] == pytest.approx(numeric, rel=1e-4)


class TestInterface:
    def test_elmore_matches_walk(self):
        sens = delay_sensitivities(fig4_rc_tree(), "4", {"Vin": 5.0})
        assert sens.elmore_delay == pytest.approx(elmore_delays(fig4_rc_tree())["4"])

    def test_scaled_gradient_and_ranking(self):
        sens = delay_sensitivities(fig4_rc_tree(), "4", {"Vin": 5.0})
        scaled = sens.scaled_gradient()
        # Sum over all elements of x·dT/dx = T_D (the delay is homogeneous
        # of degree 1 in the R's and degree 1 in the C's... each term RC ⇒
        # total homogeneity degree 2, split evenly).
        assert sum(scaled.values()) == pytest.approx(2 * sens.elmore_delay, rel=1e-9)
        top = sens.top_contributors(2)
        assert len(top) == 2
        assert abs(top[0][1]) >= abs(top[1][1])

    def test_rejects_inductors(self, series_rlc):
        with pytest.raises(AnalysisError, match="R/C/V/I"):
            delay_sensitivities(series_rlc, "b", {"Vin": 5.0})

    def test_rejects_ground(self, single_rc):
        with pytest.raises(AnalysisError):
            delay_sensitivities(single_rc, "0", {"Vin": 5.0})

    def test_rejects_floating_groups(self, floating_node_circuit):
        with pytest.raises(AnalysisError, match="floating"):
            delay_sensitivities(floating_node_circuit, "1", {"Vin": 5.0})

    def test_gradient_positive_on_trees(self):
        # More resistance or capacitance can only slow an RC tree.
        circuit = random_rc_tree(8, seed=2)
        sens = delay_sensitivities(circuit, circuit.nodes[-1], {"Vin": 5.0})
        assert all(v >= -1e-20 for v in sens.d_resistance.values())
        assert all(v >= -1e-12 for v in sens.d_capacitance.values())
