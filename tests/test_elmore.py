"""Tests for the Elmore tree-walk delay (paper Sec. II / eq. 50)."""

import numpy as np
import pytest

from repro import MnaSystem
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.core.moments import homogeneous_moments
from repro.papercircuits import fig4_rc_tree, fig4_elmore_delays, random_rc_tree
from repro.rctree import elmore_delay, elmore_delays


class TestFig4:
    def test_matches_eq50_hand_values(self):
        walk = elmore_delays(fig4_rc_tree())
        hand = fig4_elmore_delays()
        for node, expected in hand.items():
            assert walk[node] == pytest.approx(expected)

    def test_root_has_zero_delay(self):
        assert elmore_delays(fig4_rc_tree())["in"] == 0.0

    def test_single_node_helper(self):
        assert elmore_delay(fig4_rc_tree(), "4") == pytest.approx(0.7e-3)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            elmore_delay(fig4_rc_tree(), "zz")

    def test_monotone_along_paths(self):
        # Delay can only grow walking away from the root.
        delays = elmore_delays(fig4_rc_tree())
        assert delays["4"] > delays["3"] > delays["1"]
        assert delays["2"] > delays["1"]


class TestAgainstFirstMoment:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_equals_m0_over_swing_on_random_trees(self, seed):
        # The Sec. IV claim: the Elmore delay IS the first AWE moment.
        circuit = random_rc_tree(10, seed=seed)
        system = MnaSystem(circuit)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(circuit, system, state, {"Vin": 1.0})
        x_final = dc_operating_point(system, {"Vin": 1.0})
        moments = homogeneous_moments(system, x0 - x_final, 1)
        walk = elmore_delays(circuit)
        for node in circuit.nodes:
            if node == "in":
                continue
            row = system.index.node(node)
            m0 = moments.sequence_for(row)[1]
            assert walk[node] == pytest.approx(-m0, rel=1e-10)

    def test_scaling_with_resistance(self):
        base = elmore_delays(fig4_rc_tree())["4"]
        doubled = elmore_delays(fig4_rc_tree(resistance=2e3))["4"]
        assert doubled == pytest.approx(2 * base)

    def test_scaling_with_capacitance(self):
        base = elmore_delays(fig4_rc_tree())["4"]
        doubled = elmore_delays(fig4_rc_tree(capacitance=0.2e-6))["4"]
        assert doubled == pytest.approx(2 * base)


class TestComplexity:
    def test_linear_walk_handles_large_trees(self):
        circuit = random_rc_tree(500, seed=3)
        delays = elmore_delays(circuit)
        assert len(delays) == 501  # 500 nodes + root
        assert min(delays.values()) == 0.0
        assert all(d >= 0 for d in delays.values())
