"""Tests for the conformance fuzzing subsystem itself.

Three properties matter about a fuzzer: it is *reproducible* (a seed is
a complete bug report), it is *quiet on healthy code* (the invariant
bounds hold across the generator families), and it actually *detects
and distills injected defects* (the gamma-ablation acceptance test).
"""

import json

import pytest

from repro.circuit.writer import write_netlist
from repro.conformance import (
    CHECKS,
    FAMILIES,
    FuzzConfig,
    generate_case,
    run_check,
    run_fuzz,
    shrink_case,
)
from repro.conformance.checks import SkipCheck
from repro.errors import CircuitError


def canonical_text(case):
    if getattr(case, "kind", "circuit") == "sta":
        return json.dumps(case.to_payload(), sort_keys=True)
    return write_netlist(case.circuit, case.stimuli, title="t", canonical=True)


class TestGeneration:
    def test_case_is_a_pure_function_of_the_seed(self):
        for seed in (0, 1, 17, 123456):
            a, b = generate_case(seed), generate_case(seed)
            assert a.family == b.family
            assert a.nodes == b.nodes
            assert canonical_text(a) == canonical_text(b)

    def test_every_family_appears_in_a_modest_seed_range(self):
        seen = {generate_case(seed).family for seed in range(120)}
        assert seen == set(FAMILIES)

    def test_forced_family_is_deterministic_too(self):
        a = generate_case(7, family="rc_mesh")
        b = generate_case(7, family="rc_mesh")
        assert a.family == "rc_mesh"
        assert canonical_text(a) == canonical_text(b)

    def test_unknown_family_rejected(self):
        with pytest.raises(CircuitError, match="unknown fuzz family"):
            generate_case(0, family="quantum_foam")

    def test_outputs_exist_and_source_is_driven(self):
        for seed in range(30):
            case = generate_case(seed)
            if case.kind == "sta":
                for node in case.nodes:
                    assert case.graph.has_node(node), (seed, node)
                assert case.required, seed
            else:
                for node in case.nodes:
                    assert case.circuit.has_node(node), (seed, node)
                assert case.source in case.stimuli


class TestChecksOnHealthyCode:
    @pytest.mark.parametrize("seed", [0, 2, 3, 5])
    def test_all_checks_clean_on_sample_seeds(self, seed):
        case = generate_case(seed)
        config = FuzzConfig()
        for name in CHECKS:
            try:
                violations = run_check(name, case, config)
            except SkipCheck:
                continue
            assert violations == [], (seed, case.family, name)

    def test_elmore_check_skips_non_trees(self):
        case = generate_case(0, family="trapped_charge")
        assert not case.is_rc_tree
        with pytest.raises(SkipCheck):
            run_check("elmore_first_order", case, FuzzConfig())


class TestRunner:
    def test_report_is_byte_identical_across_reruns(self):
        config = FuzzConfig(checks=("roundtrip", "canonical_key",
                                    "elmore_first_order"))
        first = run_fuzz(range(12), config=config)
        second = run_fuzz(range(12), config=config)
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))
        assert first["schema"] == "repro.fuzz-report/1"
        assert first["ok"]

    def test_totals_arithmetic(self):
        config = FuzzConfig(checks=("roundtrip", "linearity"))
        report = run_fuzz(range(8), config=config)
        totals = report["totals"]
        assert totals["cases"] == 8
        assert totals["checks"] == 16
        assert (totals["passes"] + totals["skips"] + totals["violations"]
                + totals["crashes"]) == totals["checks"]
        assert sum(report["families"].values()) == 8

    def test_generator_crash_is_a_recorded_finding(self):
        report = run_fuzz([0], config=FuzzConfig(checks=("roundtrip",)),
                          family="no_such_family")
        assert not report["ok"]
        assert report["totals"]["crashes"] == 1
        record = report["failures"][0]
        assert record["check"] == "generate"
        assert record["error"]["type"] == "CircuitError"


class TestInjectedBugAcceptance:
    """The ISSUE acceptance criterion: ablating eq. 47 frequency scaling
    must be *detected* by the differential check on a stiff chain and
    *shrunk* to a minimal (<= 6 element) circuit."""

    ABLATED = FuzzConfig(use_scaling=False, checks=("awe_vs_transient",))

    def test_ablation_detected_on_stiff_chain(self):
        case = generate_case(0, family="stiff_chain")
        violations = run_check("awe_vs_transient", case, self.ABLATED)
        assert violations, "gamma ablation went undetected"
        assert run_check("awe_vs_transient", case, FuzzConfig()) == [], (
            "healthy configuration must pass the same case")

    def test_shrinker_reduces_to_minimal_circuit(self):
        case = generate_case(0, family="stiff_chain")
        result = shrink_case(case, self.ABLATED, "awe_vs_transient")
        assert result.elements <= 6, result.netlist
        assert result.violations
        assert "exceeds bound" in result.violations[0]
        # The reduced netlist is itself replayable text.
        from repro.circuit.parser import parse_netlist
        deck = parse_netlist(result.netlist)
        assert len(deck.circuit) == result.elements

    def test_shrinker_refuses_a_passing_case(self):
        case = generate_case(0, family="stiff_chain")
        with pytest.raises(ValueError, match="does not fail"):
            shrink_case(case, FuzzConfig(), "awe_vs_transient")


class TestFuzzCli:
    def test_smoke_run_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seeds", "2", "--check", "roundtrip",
                     "--check", "canonical_key"]) == 0
        out = capsys.readouterr().out
        assert "2 case(s)" in out and "0 violation(s)" in out

    def test_report_file_is_reproducible(self, tmp_path):
        from repro.cli import main

        args = ["fuzz", "--seeds", "4", "--check", "roundtrip", "--quiet"]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*args, "--report", str(first)]) == 0
        assert main([*args, "--report", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert json.loads(first.read_text())["schema"] == "repro.fuzz-report/1"

    def test_ablated_run_fails_with_exit_one(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--seeds", "1", "--family", "stiff_chain",
                     "--check", "awe_vs_transient", "--ablate-scaling",
                     "--quiet"])
        assert code == 1
        assert "FAIL seed 0" in capsys.readouterr().out

    def test_unknown_check_is_usage_error(self):
        from repro.cli import main

        assert main(["fuzz", "--seeds", "1", "--check", "vibes"]) == 2
