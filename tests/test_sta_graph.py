"""Unit tests for the timing DAG and arrival/required/slack propagation.

The hand-worked examples pin the conventions down exactly: max-arrival
forward, min-required backward, ``-inf``/``+inf`` defaults, ``+inf``
slack for anything unconstrained, and deterministic topological order.
"""

import math

import pytest

from repro.errors import StaError
from repro.sta import TimingGraph, analyze
from repro.sta.graph import report_top_k_critical_paths

INF = float("inf")


def diamond():
    """a -> {b, c} -> d with a shorter and a longer branch."""
    g = TimingGraph("diamond")
    g.add_edge("a", "b", 1.0)
    g.add_edge("a", "c", 2.0)
    g.add_edge("b", "d", 3.0)
    g.add_edge("c", "d", 0.5)
    return g


class TestConstruction:
    def test_nodes_keep_insertion_order(self):
        g = TimingGraph()
        for name in ("z", "m", "a"):
            g.add_node(name)
        assert g.nodes == ("z", "m", "a")
        g.add_node("m")  # idempotent
        assert g.node_count == 3

    def test_edges_create_their_nodes(self):
        g = TimingGraph()
        edge = g.add_edge("x", "y", 2.5, kind="cell", label="INV")
        assert g.has_node("x") and "y" in g
        assert edge.delay == 2.5 and edge.kind == "cell" and edge.label == "INV"
        assert g.out_edges("x") == (edge,)
        assert g.in_edges("y") == (edge,)

    @pytest.mark.parametrize("delay", [-1.0, float("nan"), INF, -INF])
    def test_bad_delays_rejected(self, delay):
        with pytest.raises(StaError, match="finite delay"):
            TimingGraph().add_edge("a", "b", delay)

    def test_self_loop_rejected(self):
        with pytest.raises(StaError, match="self loop"):
            TimingGraph().add_edge("a", "a", 1.0)

    def test_duplicate_edge_rejected(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(StaError, match="duplicate edge"):
            g.add_edge("a", "b", 2.0)

    def test_bad_node_name_rejected(self):
        with pytest.raises(StaError, match="non-empty string"):
            TimingGraph().add_node("")
        with pytest.raises(StaError, match="non-empty string"):
            TimingGraph().add_node(3)

    def test_copy_is_deep_for_topology(self):
        g = diamond()
        clone = g.copy()
        clone.add_edge("d", "e", 1.0)
        assert g.node_count == 4 and clone.node_count == 5
        assert [e.delay for e in clone.edges()][:4] == [
            e.delay for e in g.edges()]


class TestTopology:
    def test_order_is_deterministic_and_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        assert order == g.topological_order()
        position = {n: i for i, n in enumerate(order)}
        for edge in g.edges():
            assert position[edge.src] < position[edge.dst]

    def test_order_is_cached_and_invalidated(self):
        g = diamond()
        first = g.topological_order()
        assert g.topological_order() is first
        g.add_edge("d", "e", 1.0)
        assert g.topological_order() != first

    def test_cycle_is_reported_with_its_nodes(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0)
        g.add_edge("c", "a", 1.0)
        with pytest.raises(StaError, match="cycle") as err:
            g.topological_order()
        message = str(err.value)
        for node in ("a", "b", "c"):
            assert node in message


class TestAnalyze:
    def test_hand_worked_diamond(self):
        res = analyze(diamond(), {"a": 0.5}, {"d": 5.0})
        # a: 0.5; b: 1.5; c: 2.5; d: max(1.5+3, 2.5+0.5) = 4.5
        assert res.arrival == {"a": 0.5, "b": 1.5, "c": 2.5, "d": 4.5}
        # d: 5; b: 5-3 = 2; c: 5-0.5 = 4.5; a: min(2-1, 4.5-2) = 1
        assert res.required_time == {"a": 1.0, "b": 2.0, "c": 4.5, "d": 5.0}
        assert res.slack == {"a": 0.5, "b": 0.5, "c": 2.0, "d": 0.5}
        assert res.worst_slack == 0.5
        assert res.endpoints == ("d",)

    def test_negative_slack_is_reported(self):
        g = TimingGraph()
        g.add_edge("a", "b", 10.0)
        res = analyze(g, {"a": 0.0}, {"b": 4.0})
        assert res.slack["b"] == -6.0
        assert res.worst_slack == -6.0

    def test_unreached_endpoint_has_infinite_slack(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        g.add_node("orphan")
        res = analyze(g, {"a": 0.0}, {"b": 3.0, "orphan": 1.0})
        assert res.arrival["orphan"] == -INF
        assert res.slack["orphan"] == INF
        assert res.worst_slack == 3.0 - 1.0
        # Worst slack first, ties by name; +inf sorts last.
        assert res.endpoints == ("b", "orphan")

    def test_all_endpoints_unreached_gives_none_worst_slack(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        g.add_node("x")
        res = analyze(g, {"a": 0.0}, {"x": 1.0})
        assert res.worst_slack is None

    def test_node_off_any_endpoint_is_unconstrained(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "c", 1.0)
        res = analyze(g, {"a": 0.0}, {"b": 5.0})
        assert res.required_time["c"] == INF
        assert res.slack["c"] == INF

    def test_external_arrival_competes_with_in_edges(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        res = analyze(g, {"a": 0.0, "b": 9.0}, {"b": 10.0})
        assert res.arrival["b"] == 9.0  # max(0+1, external 9)

    def test_required_on_internal_node_competes_with_successors(self):
        g = TimingGraph()
        g.add_edge("a", "m", 1.0)
        g.add_edge("m", "z", 4.0)
        res = analyze(g, {"a": 0.0}, {"m": 2.0, "z": 10.0})
        # m's own constraint (2) is tighter than what z demands (10-4=6).
        assert res.required_time["m"] == 2.0

    @pytest.mark.parametrize("times, role", [
        ({}, "arrivals"),
        ("nope", "arrivals"),
        ({"missing": 1.0}, "arrivals"),
        ({"a": float("nan")}, "arrivals"),
    ])
    def test_bad_time_maps_rejected(self, times, role):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        good = {"a": 0.0}
        with pytest.raises(StaError):
            if role == "arrivals":
                analyze(g, times, {"b": 1.0})

    def test_bad_required_rejected_too(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(StaError, match="required"):
            analyze(g, {"a": 0.0}, {"b": math.inf})

    def test_analyze_rejects_cyclic_graph(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 1.0)
        with pytest.raises(StaError, match="cycle"):
            analyze(g, {"a": 0.0}, {"b": 1.0})


class TestTopPathsBasics:
    def test_diamond_paths_in_slack_order(self):
        paths = report_top_k_critical_paths(
            diamond(), {"a": 0.5}, {"d": 5.0}, 5)
        assert [p.nodes for p in paths] == [
            ("a", "b", "d"), ("a", "c", "d")]
        assert [p.slack for p in paths] == [0.5, 2.0]
        assert paths[0].arrival == 4.5 and paths[0].required == 5.0
        assert [e.delay for e in paths[0].edges] == [1.0, 3.0]

    def test_k_zero_is_empty(self):
        assert report_top_k_critical_paths(
            diamond(), {"a": 0.0}, {"d": 5.0}, 0) == []

    def test_k_must_be_a_nonnegative_integer(self):
        for bad in (-1, 1.5):
            with pytest.raises(StaError, match="non-negative integer"):
                report_top_k_critical_paths(
                    diamond(), {"a": 0.0}, {"d": 5.0}, bad)

    def test_single_node_path(self):
        g = TimingGraph()
        g.add_node("p")
        paths = report_top_k_critical_paths(g, {"p": 1.0}, {"p": 4.0}, 3)
        assert len(paths) == 1
        assert paths[0].nodes == ("p",) and paths[0].edges == ()
        assert paths[0].slack == 3.0

    def test_launch_that_reaches_no_endpoint_yields_nothing(self):
        g = TimingGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("x", "y", 1.0)
        paths = report_top_k_critical_paths(
            g, {"a": 0.0, "x": 0.0}, {"b": 5.0}, 10)
        assert [p.nodes for p in paths] == [("a", "b")]

    def test_result_top_paths_delegates(self):
        res = analyze(diamond(), {"a": 0.5}, {"d": 5.0})
        assert [p.nodes for p in res.top_paths(1)] == [("a", "b", "d")]
