"""Tests for the SPICE-style netlist parser."""

import pytest

from repro.analysis.sources import DC, PWL, Pulse, Step
from repro.circuit.parser import parse_netlist
from repro.errors import NetlistParseError

DECK = """\
* simple RC tree
Vin in 0 PWL(0 0 1n 5)
R1 in 1 10k
R2 1 2 5k
C1 1 0 1p
C2 2 0 2p IC=2.5
.end
"""


class TestBasicParsing:
    def test_elements_parsed(self):
        deck = parse_netlist(DECK)
        assert len(deck.circuit) == 5
        assert deck.circuit["R1"].resistance == 10e3
        assert deck.circuit["C2"].capacitance == 2e-12

    def test_ic_extraction(self):
        deck = parse_netlist(DECK)
        assert deck.circuit["C2"].initial_voltage == 2.5
        assert deck.circuit["C1"].initial_voltage is None

    def test_pwl_stimulus(self):
        deck = parse_netlist(DECK)
        assert isinstance(deck.stimuli["Vin"], PWL)

    def test_comment_lines_skipped(self):
        deck = parse_netlist("* nothing\nR1 a 0 1k\n")
        assert len(deck.circuit) == 1

    def test_end_stops_parsing(self):
        deck = parse_netlist("R1 a 0 1k\n.end\nR2 b 0 1k\n", title_line=False)
        assert "R2" not in deck.circuit

    def test_title_line(self):
        deck = parse_netlist("my circuit title\nR1 a 0 1k\n")
        assert deck.title == "my circuit title"
        assert deck.circuit.title == "my circuit title"

    def test_first_line_card_without_title(self):
        deck = parse_netlist("R1 a 0 1k\n")
        assert "R1" in deck.circuit

    def test_continuation_lines(self):
        deck = parse_netlist("R1 a 0\n+ 1k\n", title_line=False)
        assert deck.circuit["R1"].resistance == 1e3

    def test_trailing_comment_stripped(self):
        deck = parse_netlist("R1 a 0 1k ; load\nR2 b 0 2k $ other\n", title_line=False)
        assert deck.circuit["R1"].resistance == 1e3
        assert deck.circuit["R2"].resistance == 2e3

    def test_unknown_directive_recorded(self):
        deck = parse_netlist("R1 a 0 1k\n.tran 1n 10n\n", title_line=False)
        assert deck.ignored_directives == (".tran 1n 10n",)

    def test_title_directive(self):
        deck = parse_netlist("R1 a 0 1k\n.title hello\n", title_line=False)
        assert deck.title == "hello"


class TestSources:
    def test_dc_value(self):
        deck = parse_netlist("V1 a 0 5\n", title_line=False)
        assert isinstance(deck.stimuli["V1"], DC)
        assert deck.stimuli["V1"].level == 5.0

    def test_dc_keyword(self):
        deck = parse_netlist("V1 a 0 DC 3.3\n", title_line=False)
        assert deck.stimuli["V1"].level == 3.3

    def test_step_function(self):
        deck = parse_netlist("V1 a 0 STEP(0 5 1n)\n", title_line=False)
        stim = deck.stimuli["V1"]
        assert isinstance(stim, Step)
        assert (stim.v0, stim.v1, stim.delay) == (0.0, 5.0, 1e-9)

    def test_pulse_function(self):
        deck = parse_netlist("I1 a 0 PULSE(0 1m 1n 0.1n 0.1n 5n)\n", title_line=False)
        stim = deck.stimuli["I1"]
        assert isinstance(stim, Pulse)
        assert stim.v1 == 1e-3

    def test_pwl_with_commas(self):
        deck = parse_netlist("V1 a 0 PWL(0,0 1n,5)\n", title_line=False)
        assert deck.stimuli["V1"].points == ((0.0, 0.0), (1e-9, 5.0))

    def test_source_dc_matches_stimulus_initial(self):
        deck = parse_netlist("V1 a 0 STEP(1 5)\n", title_line=False)
        assert deck.circuit["V1"].dc == 1.0


class TestIcDirective:
    def test_sets_grounded_cap_ic(self):
        deck = parse_netlist(
            "R1 a 0 1k\nC1 a 0 1p\n.ic V(a)=2.5\n", title_line=False
        )
        assert deck.circuit["C1"].initial_voltage == 2.5

    def test_multiple_assignments(self):
        deck = parse_netlist(
            "R1 a b 1k\nC1 a 0 1p\nC2 b 0 1p\n.ic V(a)=1 V(b)=2\n",
            title_line=False,
        )
        assert deck.circuit["C1"].initial_voltage == 1.0
        assert deck.circuit["C2"].initial_voltage == 2.0

    def test_reversed_cap_orientation(self):
        deck = parse_netlist(
            "R1 a 0 1k\nC1 0 a 1p\n.ic V(a)=3\n", title_line=False
        )
        # v(a) = −v(C1) for a cap written ground-first.
        assert deck.circuit["C1"].initial_voltage == -3.0

    def test_no_cap_at_node_rejected(self):
        with pytest.raises(NetlistParseError, match="no grounded capacitor"):
            parse_netlist("R1 a 0 1k\n.ic V(a)=1\n", title_line=False)

    def test_empty_directive_rejected(self):
        with pytest.raises(NetlistParseError, match="assignments"):
            parse_netlist("R1 a 0 1k\nC1 a 0 1p\n.ic\n", title_line=False)

    def test_engineering_values(self):
        deck = parse_netlist(
            "R1 a 0 1k\nC1 a 0 1p\n.ic V(a)=500m\n", title_line=False
        )
        assert deck.circuit["C1"].initial_voltage == pytest.approx(0.5)


class TestControlledSources:
    def test_vccs(self):
        deck = parse_netlist("G1 o 0 c1 c2 1m\nR1 c1 0 1k\nR2 o 0 1k\n", title_line=False)
        assert deck.circuit["G1"].gain == 1e-3

    def test_cccs(self):
        deck = parse_netlist("V1 a 0 1\nF1 o 0 V1 2\nR1 o 0 1k\n", title_line=False)
        assert deck.circuit["F1"].control_element == "V1"


class TestErrors:
    def test_line_numbers_in_errors(self):
        with pytest.raises(NetlistParseError, match="line 2"):
            parse_netlist("R1 a 0 1k\nR2 b 0\n", title_line=False)

    def test_unbalanced_parens(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("V1 a 0 PWL(0 0\n", title_line=False)

    def test_unknown_card(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("Q1 a b c model\n", title_line=False)

    def test_continuation_without_previous(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("+ 1k\n", title_line=False)

    def test_bad_pwl_arity(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("V1 a 0 PWL(0 0 1n)\n", title_line=False)

    def test_duplicate_element_reports_line(self):
        with pytest.raises(NetlistParseError, match="line 2"):
            parse_netlist("R1 a 0 1k\nR1 a 0 2k\n", title_line=False)
