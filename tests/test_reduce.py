"""Unit and property tests for RC-chain pre-reduction (`repro.reduce`).

The conformance fuzzer (`reduction_equivalence`) already hammers the
moment-preservation invariant on random circuit families; this module
pins the structural contract: what collapses, what is left alone (taps,
pinned anchors, IC/floating-cap neighbourhoods), the no-op identity
guarantee the content-addressed cache depends on, and the batch engine's
one-reduced-circuit-per-job-group plumbing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import AweAnalyzer, MnaSystem, Step
from repro.circuit.netlist import Circuit
from repro.core.transfer import transfer_moments
from repro.engine.batch import AweJob, BatchEngine
from repro.papercircuits import random_rc_tree, rc_ladder
from repro.reduce import reduce_circuit, reduction_summary

STIM = {"Vin": Step(0.0, 1.0)}


class TestStructure:
    def test_ladder_collapses_and_preserves_totals(self):
        circuit = rc_ladder(100)
        reduction = reduce_circuit(circuit, keep=("1", "100"))
        assert reduction.reduced
        assert reduction.reduced_node_count < reduction.original_node_count / 4
        # Chain anchors "1" and "100" are kept and unpinned, so both the
        # series resistance and the chain capacitance survive exactly.
        assert sum(r.resistance for r in reduction.circuit.resistors) == (
            pytest.approx(sum(r.resistance for r in circuit.resistors), rel=1e-12)
        )
        assert sum(c.capacitance for c in reduction.circuit.capacitors) == (
            pytest.approx(sum(c.capacitance for c in circuit.capacitors), rel=1e-12)
        )
        for node in ("1", "100"):
            assert node in reduction.circuit.nodes

    def test_sections_bound_interior_nodes(self):
        reduction = reduce_circuit(rc_ladder(100), keep=("100",))
        assert reduction.reduced
        assert all(len(chain.interior) <= 8 for chain in reduction.chains)
        # Custom section size is honoured too.
        coarse = reduce_circuit(rc_ladder(100), keep=("100",), max_section=25)
        assert all(len(chain.interior) <= 25 for chain in coarse.chains)
        assert coarse.reduced_node_count < reduction.reduced_node_count

    def test_max_section_validation(self):
        with pytest.raises(ValueError):
            reduce_circuit(rc_ladder(10), max_section=0)

    def test_noop_returns_the_same_object(self):
        circuit = rc_ladder(3)
        reduction = reduce_circuit(circuit, keep=("1", "2", "3"))
        assert not reduction.reduced
        assert reduction.circuit is circuit
        assert reduction.removed_nodes == ()

    def test_summary_shape(self):
        summary = reduction_summary(reduce_circuit(rc_ladder(50), keep=("50",)))
        assert set(summary) == {
            "reduced", "original_nodes", "reduced_nodes", "removed_nodes",
            "chains",
        }
        assert summary["reduced"] is True
        assert summary["original_nodes"] == 51


class TestSensitiveAnchors:
    """Chains must not collapse onto IC-carrying or floating-cap nodes —
    the re-homed cap would close a capacitive loop whose implied t = 0⁺
    voltage contradicts the new cap's implicit 0 V initial condition."""

    def test_ic_cap_anchor_blocks_the_chain(self):
        circuit = Circuit("ic anchor")
        circuit.add_voltage_source("Vin", "in", "0")
        previous = "in"
        for i in (1, 2, 3):
            circuit.add_resistor(f"R{i}", previous, str(i), 100.0)
            circuit.add_capacitor(f"C{i}", str(i), "0", 1e-13)
            previous = str(i)
        circuit.set_initial_voltage("C2", -2.0)
        reduction = reduce_circuit(circuit, keep=("3",))
        # Node 1 is the only interior candidate, but its chain is
        # anchored at node 2, which carries the IC cap: nothing moves.
        assert not reduction.reduced
        assert reduction.circuit is circuit
        # And the (un)reduced circuit analyses cleanly.
        response = AweAnalyzer(circuit, STIM).response("3")
        assert np.isfinite(response.delay_50())

    def test_floating_cap_anchor_blocks_the_chain(self):
        circuit = Circuit("floating anchor")
        circuit.add_voltage_source("Vin", "in", "0")
        previous = "in"
        for i, node in enumerate(("a", "b", "attach"), start=1):
            circuit.add_resistor(f"R{i}", previous, node, 100.0)
            circuit.add_capacitor(f"C{i}", node, "0", 1e-13)
            previous = node
        circuit.add_capacitor("Ccouple", "attach", "f", 5e-14)
        circuit.add_capacitor("Cfloat", "f", "0", 5e-14)
        reduction = reduce_circuit(circuit)
        assert not reduction.reduced
        assert reduction.circuit is circuit

    def test_chain_away_from_the_sensitive_node_still_collapses(self):
        circuit = Circuit("mixed")
        circuit.add_voltage_source("Vin", "in", "0")
        previous = "in"
        for i in range(1, 8):
            circuit.add_resistor(f"R{i}", previous, str(i), 100.0)
            circuit.add_capacitor(f"C{i}", str(i), "0", 1e-13)
            previous = str(i)
        circuit.set_initial_voltage("C7", 1.0)
        # Keeping node 4 splits the run: in..4 is clean and collapses;
        # 4..7 ends at the IC cap and must survive untouched.
        reduction = reduce_circuit(circuit, keep=("4",))
        assert reduction.reduced
        assert set(reduction.removed_nodes) == {"1", "2", "3"}
        for survivor in ("4", "5", "6", "7"):
            assert survivor in reduction.circuit.nodes


class TestMomentPreservation:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), nodes=st.integers(20, 90))
    def test_m0_and_m1_survive_on_random_trees(self, seed, nodes):
        circuit = random_rc_tree(nodes, seed=seed)
        tap = circuit.nodes[-1]
        reduction = reduce_circuit(circuit, keep=(tap,))
        if not reduction.reduced:
            return
        m_full = transfer_moments(MnaSystem(circuit), "Vin", tap, 2)
        m_reduced = transfer_moments(MnaSystem(reduction.circuit), "Vin", tap, 2)
        assert np.allclose(m_reduced, m_full, rtol=1e-9)


class TestCacheKeys:
    """The service cache must never conflate reduced and unreduced
    circuits — and must keep hitting when reduction was a no-op."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), nodes=st.integers(5, 60))
    def test_key_changes_exactly_when_the_circuit_does(self, seed, nodes):
        circuit = random_rc_tree(nodes, seed=seed)
        reduction = reduce_circuit(circuit, keep=(circuit.nodes[-1],))
        if reduction.reduced:
            assert reduction.circuit.canonical_key() != circuit.canonical_key()
        else:
            assert reduction.circuit is circuit
            assert reduction.circuit.canonical_key() == circuit.canonical_key()

    def test_noop_reduction_preserves_the_exact_key(self):
        circuit = rc_ladder(2)
        reduction = reduce_circuit(circuit, keep=("1", "2"))
        assert not reduction.reduced
        assert reduction.circuit.canonical_key(STIM) == circuit.canonical_key(STIM)


class TestBatchPlumbing:
    def test_jobs_sharing_a_circuit_share_one_reduced_copy(self):
        circuit = rc_ladder(60)
        other = rc_ladder(40)
        jobs = [
            AweJob(circuit, ("60",), stimuli=STIM, reduce=True),
            AweJob(circuit, ("30",), stimuli=STIM, reduce=True),
            AweJob(other, ("40",), stimuli=STIM),
        ]
        applied = BatchEngine._apply_reduction(jobs)
        assert applied[0].circuit is applied[1].circuit
        assert applied[0].circuit is not circuit
        assert not applied[0].reduce and not applied[1].reduce
        # The union of both jobs' taps survived in the shared copy.
        for tap in ("30", "60"):
            assert tap in applied[0].circuit.nodes
        # The non-reduced job is passed through untouched.
        assert applied[2] is jobs[2]

    def test_reduced_batch_matches_unreduced_delays(self):
        circuit = rc_ladder(80)
        jobs = [
            AweJob(circuit, ("80",), stimuli=STIM, order=3),
            AweJob(circuit, ("80",), stimuli=STIM, order=3, reduce=True),
        ]
        plain, reduced = BatchEngine().run(jobs, workers=1)
        assert plain.ok and reduced.ok
        assert reduced.responses["80"].delay_50() == pytest.approx(
            plain.responses["80"].delay_50(), rel=0.01
        )


class TestReductionMemo:
    """The content-keyed reduction memo (`repro.reduce.ReductionMemo`):
    the service path reduces each distinct circuit once, no matter how
    many requests carry it."""

    def _memo(self, max_entries=64):
        from repro.reduce import ReductionMemo

        return ReductionMemo(max_entries=max_entries)

    def test_content_keyed_hit_across_equal_circuits(self):
        memo = self._memo()
        first = memo.reduce(rc_ladder(40))
        again = memo.reduce(rc_ladder(40))  # a distinct, equal object
        assert again is first               # shared reduced circuit
        stats = memo.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_keep_set_and_section_bound_are_part_of_the_key(self):
        memo = self._memo()
        plain = memo.reduce(rc_ladder(40))
        kept = memo.reduce(rc_ladder(40), keep=("20",))
        small = memo.reduce(rc_ladder(40), max_section=4)
        assert kept is not plain and small is not plain
        assert memo.stats()["misses"] == 3
        # keep order is normalized: same set, same entry.
        assert memo.reduce(rc_ladder(40), keep=("20",)) is kept

    def test_eviction_respects_the_bound(self):
        memo = self._memo(max_entries=2)
        for sections in (10, 20, 30, 40):
            memo.reduce(rc_ladder(sections))
        stats = memo.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 2

    def test_memoized_result_matches_direct_reduction(self):
        memo = self._memo()
        direct = reduce_circuit(rc_ladder(50), keep=("25",)).circuit
        memoized = memo.reduce(rc_ladder(50), keep=("25",))
        assert memoized.canonical_key() == direct.canonical_key()

    def test_service_path_reduces_each_circuit_once(self):
        """Two distinct requests (different analysis orders, so distinct
        result-cache keys) carrying the same circuit and node set share
        one memoized reduction inside the daemon."""
        import json

        from repro import Step
        from repro.circuit.writer import write_netlist
        from repro.reduce import REDUCTION_MEMO
        from repro.service import AnalysisService

        REDUCTION_MEMO.clear()
        deck = write_netlist(rc_ladder(30), {"Vin": Step(0.0, 5.0)})
        variant = "* same circuit, different bytes\n" + deck
        before = REDUCTION_MEMO.stats()

        service = AnalysisService(workers=1).start()
        try:
            for text, order in ((deck, 2), (variant, 3)):
                body = json.dumps({"deck": text, "nodes": ["15"],
                                   "order": order,
                                   "reduce": True}).encode()
                status, response, _ = service.submit(body)
                assert status == 200, response
        finally:
            service.close(timeout=60)

        after = REDUCTION_MEMO.stats()
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] - before["hits"] == 1


class TestMemoAliasingGuard:
    """Memo hits are shared across consumers, so mutating one downstream
    (as a naive sweep perturbation would) must fail loudly instead of
    corrupting every other holder's results and the content key."""

    def _memo(self):
        from repro.reduce import ReductionMemo

        return ReductionMemo()

    def test_memo_hits_are_frozen(self):
        from repro.errors import CircuitError

        memo = self._memo()
        shared = memo.reduce(rc_ladder(40))
        assert shared.frozen
        resistor = shared.resistors[0]
        with pytest.raises(CircuitError, match="frozen"):
            shared.replace(type(resistor)(resistor.name, resistor.positive,
                                          resistor.negative, 123.0))
        with pytest.raises(CircuitError, match="frozen"):
            shared.add_resistor("Rnew", "1", "0", 1.0)

    def test_noop_reduction_hit_does_not_alias_the_callers_circuit(self):
        # rc_ladder(2) has no collapsible chain once both nodes are kept:
        # reduce_circuit returns the input object, but the memo must not
        # freeze (or store) the caller's own circuit.
        memo = self._memo()
        mine = rc_ladder(2)
        shared = memo.reduce(mine, keep=("1", "2"))
        assert shared is not mine
        assert not mine.frozen
        assert shared.frozen
        assert shared.canonical_key() == mine.canonical_key()
        # The caller's object stays freely mutable without touching the memo.
        mine.add_capacitor("Cextra", "1", "0", 1e-15)
        assert memo.reduce(rc_ladder(2), keep=("1", "2")) is shared

    def test_copy_of_a_frozen_hit_is_mutable_and_detached(self):
        memo = self._memo()
        shared = memo.reduce(rc_ladder(40))
        variant = shared.copy()
        assert not variant.frozen
        resistor = variant.resistors[0]
        variant.replace(type(resistor)(resistor.name, resistor.positive,
                                       resistor.negative,
                                       resistor.resistance * 2.0))
        # Perturbing the copy never leaks back into the shared object.
        assert shared[resistor.name].resistance == resistor.resistance
        assert variant.canonical_key() != shared.canonical_key()

    def test_direct_reduce_circuit_noop_identity_is_preserved(self):
        # The identity contract of reduce_circuit itself is unchanged:
        # only the memo copies on the no-op path.
        circuit = rc_ladder(2)
        reduction = reduce_circuit(circuit, keep=("1", "2"))
        assert reduction.circuit is circuit
        assert not circuit.frozen
