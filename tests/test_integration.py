"""End-to-end integration tests across the whole pipeline.

Each test exercises netlist → analysis → AWE → timing in one flow, the way
a downstream user would, and checks against an independent reference
(closed form, the exact modal solution, or the transient simulator).
"""

import numpy as np
import pytest

from repro import (
    AweAnalyzer,
    MnaSystem,
    Ramp,
    Step,
    circuit_poles,
    parse_netlist,
    simulate,
)
from repro.analysis.poles import exact_homogeneous_response
from repro.papercircuits import coupled_rc_lines, rc_mesh, rlc_transmission_ladder
from repro.timing import measure_delay
from repro.waveform import l2_error

CLOCK_TREE_DECK = """\
clock spine with two branches
Vin in 0 STEP(0 5)
R1 in spine1 120
C1 spine1 0 80f
R2 spine1 spine2 150
C2 spine2 0 60f
R3 spine2 leafA 200
C3 leafA 0 120f
R4 spine2 leafB 90
C4 leafB 0 45f
.end
"""


class TestNetlistToTiming:
    def test_parse_analyze_measure(self):
        deck = parse_netlist(CLOCK_TREE_DECK)
        analyzer = AweAnalyzer(deck.circuit, deck.stimuli)
        response = analyzer.response("leafA", error_target=0.005)
        window = response.waveform.suggested_window()
        waveform = response.waveform.to_waveform(np.linspace(0, window, 2000))
        report = measure_delay(waveform, threshold=2.5, v_final=5.0)
        reference = simulate(deck.circuit, deck.stimuli, window).voltage("leafA")
        true_delay = reference.threshold_delay(2.5)
        assert report.threshold_delay == pytest.approx(true_delay, rel=0.01)

    def test_parsed_circuit_poles_stable(self):
        deck = parse_netlist(CLOCK_TREE_DECK)
        poles = circuit_poles(MnaSystem(deck.circuit)).poles
        assert np.all(poles.real < 0)


class TestMeshesAndLines:
    def test_rc_mesh_awe_vs_transient(self):
        circuit = rc_mesh(3, 3)
        stimuli = {"Vin": Step(0, 5)}
        corner = "n2_2"
        reference = simulate(circuit, stimuli, 3e-9).voltage(corner)
        response = AweAnalyzer(circuit, stimuli).response(corner, error_target=0.005)
        assert l2_error(reference, response.waveform.to_waveform(reference.times)) < 0.01

    def test_transmission_line_auto_order(self):
        circuit = rlc_transmission_ladder(5)
        stimuli = {"Vin": Ramp(0, 5, rise_time=0.5e-9)}
        response = AweAnalyzer(circuit, stimuli, max_order=10).response(
            "5", error_target=0.02
        )
        assert response.order >= 2  # complex poles force at least 2nd order
        reference = simulate(circuit, stimuli, 1.5e-8).voltage("5")
        assert l2_error(reference, response.waveform.to_waveform(reference.times)) < 0.08

    def test_crosstalk_victim_noise(self):
        circuit = coupled_rc_lines(4, coupling=40e-15)
        stimuli = {"Vagg": Step(0, 5), "Vvic": Step(0, 0)}
        victim = "v4"
        reference = simulate(circuit, stimuli, 5e-9).voltage(victim)
        response = AweAnalyzer(circuit, stimuli).response(victim, error_target=0.02)
        candidate = response.waveform.to_waveform(reference.times)
        peak_ref = reference.values.max()
        assert peak_ref > 0.05  # there is real crosstalk noise
        assert abs(candidate.values.max() - peak_ref) < 0.15 * peak_ref
        # Victim settles back to 0: coupled charge leaves again.
        assert response.waveform.final_value() == pytest.approx(0.0, abs=1e-9)


class TestControlledSourceCircuits:
    def build_amplified_line(self, gain=2.0):
        from repro import Circuit

        ckt = Circuit("line behind a VCVS driver")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("Rin", "in", "sense", 1e3)
        ckt.add_capacitor("Csense", "sense", "0", 0.2e-12)
        ckt.add_vcvs("E1", "drv", "0", "sense", "0", gain)
        ckt.add_resistor("Rw", "drv", "out", 2e3)
        ckt.add_capacitor("Cout", "out", "0", 0.5e-12)
        return ckt

    def test_vcvs_final_value_amplified(self):
        ckt = self.build_amplified_line(gain=2.0)
        response = AweAnalyzer(ckt, {"Vin": Step(0, 2)}).response("out", order=2)
        assert response.waveform.final_value() == pytest.approx(4.0)

    def test_vcvs_awe_vs_transient(self):
        ckt = self.build_amplified_line()
        stimuli = {"Vin": Step(0, 2)}
        reference = simulate(ckt, stimuli, 2e-8).voltage("out")
        response = AweAnalyzer(ckt, stimuli).response("out", order=2)
        candidate = response.waveform.to_waveform(reference.times)
        assert np.abs(candidate.values - reference.values).max() < 0.01 * 4

    def test_vccs_load(self):
        from repro import Circuit

        ckt = Circuit("VCCS load")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("R1", "in", "a", 1e3)
        ckt.add_capacitor("C1", "a", "0", 1e-12)
        ckt.add_vccs("G1", "a", "0", "a", "0", 0.5e-3)  # extra 2k load to gnd
        system = MnaSystem(ckt)
        from repro.analysis.dcop import dc_operating_point

        x = dc_operating_point(system, {"Vin": 3.0})
        assert x[system.index.node("a")] == pytest.approx(2.0)  # 1k/2k divider

    def test_cccs_tracks_transient(self):
        from repro import Circuit

        ckt = Circuit("current mirror-ish")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("R1", "in", "a", 1e3)
        ckt.add_capacitor("C1", "a", "0", 1e-12)
        ckt.add_cccs("F1", "b", "0", "Vin", -1.0)  # mirror the source current
        ckt.add_resistor("R2", "b", "0", 2e3)
        ckt.add_capacitor("C2", "b", "0", 1e-12)
        stimuli = {"Vin": Step(0, 5)}
        reference = simulate(ckt, stimuli, 2e-8).voltage("b")
        response = AweAnalyzer(ckt, stimuli).response("b", error_target=0.01)
        candidate = response.waveform.to_waveform(reference.times)
        swing = np.abs(reference.values).max()
        assert np.abs(candidate.values - reference.values).max() < 0.02 * swing


EVERYTHING_DECK = """\
kitchen sink: every element type in one net
Vin in 0 STEP(0 5)
* driver-side RC with a grounded termination
R1 in a 200
Ca a 0 100f
R2 a b 300
Cb b 0 150f
Rterm b 0 20k
* inductive hop with mutual coupling to a victim loop
L1 b c 2n
Cc c 0 120f
Lv v1 v2 2n
Rv1 v1 0 75
Rv2 v2 0 75
Cv v2 0 80f
K1 L1 Lv 0.3
* capacitive coupling to a floating island
Cf1 c f 40f
Cf2 f 0 160f
* a sensing VCVS re-driving a side branch
E1 s 0 c 0 0.5
Rs s sl 1k
Cs sl 0 60f
.ic V(a)=0.5
.end
"""


class TestKitchenSink:
    """One deck exercising every element type, the .ic directive, a
    floating island, magnetic coupling, and a controlled source — pushed
    through parse → validate → AWE → transient agreement."""

    @pytest.fixture(scope="class")
    def deck(self):
        return parse_netlist(EVERYTHING_DECK)

    def test_parses_and_validates(self, deck):
        from repro.circuit.validation import validate_for_analysis

        validate_for_analysis(deck.circuit)
        assert len(deck.circuit.mutual_inductances) == 1
        assert deck.circuit["Ca"].initial_voltage == 0.5

    def test_floating_island_detected(self, deck):
        system = MnaSystem(deck.circuit)
        assert len(system.floating_groups) == 1

    def test_poles_all_stable(self, deck):
        poles = circuit_poles(MnaSystem(deck.circuit)).poles
        assert np.all(poles.real < 1.0)  # the island's zero mode allowed
        assert np.all(poles.real[np.abs(poles) > 1e3] < 0)

    @pytest.mark.parametrize("node", ["c", "f", "sl", "v2"])
    def test_awe_matches_transient_everywhere(self, deck, node):
        reference = simulate(deck.circuit, deck.stimuli, 1.2e-8,
                             refine_tolerance=5e-4).voltage(node)
        analyzer = AweAnalyzer(deck.circuit, deck.stimuli, max_order=10)
        response = analyzer.response(node, error_target=0.02)
        candidate = response.waveform.to_waveform(reference.times)
        scale = max(np.abs(reference.values).max(), 1e-3)
        assert np.abs(candidate.values - reference.values).max() < 0.1 * scale

    def test_island_final_value_by_charge_conservation(self, deck):
        analyzer = AweAnalyzer(deck.circuit, deck.stimuli, max_order=10)
        response = analyzer.response("f", error_target=0.02)
        reference = simulate(deck.circuit, deck.stimuli, 2e-8).voltage("f")
        assert response.waveform.final_value() == pytest.approx(
            reference.values[-1], rel=1e-2
        )


class TestExactVsTransientCrossCheck:
    def test_modal_and_timestepping_agree(self):
        # The two independent reference implementations must agree.
        circuit = rc_mesh(2, 3)
        system = MnaSystem(circuit)
        from repro.analysis.dcop import (
            dc_operating_point,
            initial_operating_point,
            resolve_initial_storage_state,
        )

        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(circuit, system, state, {"Vin": 5.0})
        x_final = dc_operating_point(system, {"Vin": 5.0})
        modal = exact_homogeneous_response(system, x0 - x_final)
        result = simulate(circuit, {"Vin": Step(0, 5)}, 2e-9)
        node = "n1_2"
        row = system.index.node(node)
        sim = result.voltage(node)
        exact = x_final[row] + modal.evaluate(row, sim.times)
        assert np.abs(sim.values - exact).max() < 2e-3 * 5
