"""Property-based tests (hypothesis) on the core invariants.

Strategies generate random-but-valid circuits and pole/residue models; the
properties asserted are the mathematical backbone of the paper:

* moment matching is exact at full order,
* first-order AWE ≡ Elmore on any RC tree,
* moments computed by tree/link equal moments computed by MNA,
* stability/finality invariants of the matched models,
* energy integrals are non-negative and Cauchy bounds dominate exact ones,
* the stimulus event decomposition reconstructs the waveform.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import MnaSystem, Step, circuit_poles
from repro.analysis.sources import Pulse, Ramp
from repro.core.error import cauchy_bound_distance, exact_l2_distance, transient_energy
from repro.core.moments import homogeneous_moments
from repro.core.model import PoleResidueModel
from repro.core.pade import match_poles
from repro.core.residues import solve_residues
from repro.errors import MomentMatrixError
from repro.papercircuits import random_rc_tree
from repro.rctree import elmore_delays, treelink_moments
from tests.strategies import moments_of, pole_residue_sets, pwl_stimuli, tree_setup


# ----------------------------------------------------------------------
# Padé / residue properties
# ----------------------------------------------------------------------


class TestMomentMatchingProperties:
    @given(pole_residue_sets())
    @settings(max_examples=60, deadline=None)
    def test_full_order_match_reproduces_all_moments(self, pole_residues):
        """The defining Padé property: the fitted q-pole model reproduces
        every matched moment (m₋₁ … m_{2q−2}) up to Hankel conditioning.

        (Pole positions themselves can be recovered poorly for wide pole
        spreads even when the moment match is perfect — a deep pole
        contributes almost nothing to dominant-scaled moments — so moments,
        not poles, are the honest invariant.)"""
        poles, residues = pole_residues
        q = len(poles)
        moments = moments_of(poles, residues, 2 * q - 1)
        try:
            result = match_poles(moments, q)
        except MomentMatrixError:
            # Tight residues/poles can make the Hankel numerically rank
            # deficient; that is a legitimate rejection, not a failure.
            assume(False)
        terms = solve_residues(result.poles, moments)
        fitted_poles = np.array([p for p, _, _ in terms])
        fitted_residues = np.array([k for _, _, k in terms])
        rtol = max(1e-7, result.condition_number * 1e-10)
        assert np.sum(fitted_residues).real == pytest.approx(
            moments[0], rel=rtol, abs=1e-12
        )
        for k in range(2 * q - 1):
            reproduced = -np.sum(fitted_residues / fitted_poles ** (k + 1))
            assert reproduced.real == pytest.approx(
                moments[k + 1], rel=rtol, abs=1e-15 * abs(moments[1])
            ), f"moment m_{k} not reproduced"

        # The dominant pole (which carries the moments) IS recovered well.
        dominant_true = max(poles, key=lambda p: abs(1 / p))
        dominant_fit = result.poles[0].real
        assert dominant_fit == pytest.approx(dominant_true, rel=max(1e-6, rtol))

    @given(pole_residue_sets())
    @settings(max_examples=60, deadline=None)
    def test_residues_reproduce_low_moments(self, pole_residues):
        poles, residues = pole_residues
        q = len(poles)
        moments = moments_of(poles, residues, max(q, 1))
        terms = solve_residues(poles.astype(complex), moments)
        # The fitted model's initial value and moments must match inputs.
        fitted = np.array([k for _, _, k in terms])
        assert np.sum(fitted).real == pytest.approx(moments[0], rel=1e-6, abs=1e-9)
        for k in range(q - 1):
            reproduced = -np.sum(
                np.array([r for _, _, r in terms])
                / np.array([p for p, _, _ in terms]) ** (k + 1)
            )
            assert reproduced.real == pytest.approx(moments[k + 1], rel=1e-5, abs=1e-9)

    @given(pole_residue_sets())
    @settings(max_examples=40, deadline=None)
    def test_instability_only_from_ill_conditioning(self, pole_residues):
        """Padé CAN return a spurious right-half-plane pole for stable
        data — the numerical fact behind the paper's Sec. 3.3 stability
        screening.  The property that must hold: a spurious unstable pole
        only appears when the Hankel solve was meaningfully
        ill-conditioned.  (An earlier form of this test also demanded the
        unstable residue weight be negligible and put the conditioning
        bar at 1e6; Hypothesis found stable three-pole inputs spanning
        ~6 decades whose fits go unstable at condition ~9e5 with O(1)
        unstable weight, so the honest property is the implication
        instability ⇒ ill-conditioning alone — exactly why the paper
        screens and discards these fits rather than trusting their
        residues.)"""
        poles, residues = pole_residues
        q = len(poles)
        moments = moments_of(poles, residues, 2 * q - 1)
        try:
            result = match_poles(moments, q)
        except MomentMatrixError:
            assume(False)
        if result.is_stable:
            return
        assert result.condition_number > 1e5, (
            "unstable fit from a well-conditioned Hankel solve"
        )


class TestEnergyProperties:
    @given(pole_residue_sets())
    @settings(max_examples=60, deadline=None)
    def test_energy_nonnegative(self, pole_residues):
        poles, residues = pole_residues
        model = PoleResidueModel(
            tuple((complex(p), 1, complex(k)) for p, k in zip(poles, residues))
        )
        assert transient_energy(model) >= 0.0

    @given(pole_residue_sets(), pole_residue_sets())
    @settings(max_examples=40, deadline=None)
    def test_cauchy_bound_dominates_exact(self, set_a, set_b):
        model_a = PoleResidueModel(
            tuple((complex(p), 1, complex(k)) for p, k in zip(*set_a))
        )
        model_b = PoleResidueModel(
            tuple((complex(p), 1, complex(k)) for p, k in zip(*set_b))
        )
        assume(len(model_a.terms) >= len(model_b.terms))
        exact = exact_l2_distance(model_a, model_b)
        bound = cauchy_bound_distance(model_a, model_b)
        # Absolute slack: for near-identical models both values are pure
        # cancellation round-off around zero.
        noise = 1e-7 * math.sqrt(
            max(transient_energy(model_a), transient_energy(model_b), 1e-30)
        )
        assert bound >= exact * (1 - 1e-9) - noise

    @given(pole_residue_sets())
    @settings(max_examples=40, deadline=None)
    def test_distance_to_self_is_zero(self, pole_residues):
        poles, residues = pole_residues
        model = PoleResidueModel(
            tuple((complex(p), 1, complex(k)) for p, k in zip(poles, residues))
        )
        energy = transient_energy(model)
        assert exact_l2_distance(model, model) <= 1e-6 * math.sqrt(energy) + 1e-12


# ----------------------------------------------------------------------
# Circuit-level properties on random RC trees
# ----------------------------------------------------------------------


class TestRcTreeProperties:
    @given(st.integers(min_value=2, max_value=14), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_elmore_equals_first_moment(self, nodes, seed):
        circuit, system, y0 = tree_setup(nodes, seed)
        moments = homogeneous_moments(system, y0, 1)
        walk = elmore_delays(circuit)
        for node in circuit.nodes:
            if node == "in":
                continue
            m0 = moments.sequence_for(system.index.node(node))[1]
            assert walk[node] == pytest.approx(-m0, rel=1e-9)

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_treelink_equals_mna_moments(self, nodes, seed):
        circuit, system, y0 = tree_setup(nodes, seed)
        mna = homogeneous_moments(system, y0, 3)
        tl = treelink_moments(circuit, {"Vin": 1.0}, 3)
        for cap in circuit.capacitors:
            node = cap.positive if cap.negative == "0" else cap.negative
            np.testing.assert_allclose(
                tl[cap.name],
                mna.sequence_for(system.index.node(node)),
                rtol=1e-8,
            )

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_all_poles_real_negative(self, nodes, seed):
        # RC circuits have real, strictly negative natural frequencies.
        circuit = random_rc_tree(nodes, seed=seed)
        poles = circuit_poles(MnaSystem(circuit)).poles
        assert len(poles) == nodes
        assert np.all(poles.real < 0)
        assert np.abs(poles.imag).max(initial=0.0) <= 1e-6 * np.abs(poles.real).max()

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_moment_signs_alternate(self, nodes, seed):
        # For an RC tree step response, y(t) = −Σ kᵢe^{pᵢt} with kᵢ > 0 …
        # hence m_k alternates in sign starting negative (m₋₁ < 0, m₀ < 0,
        # m₁ > 0, …).
        circuit, system, y0 = tree_setup(nodes, seed)
        moments = homogeneous_moments(system, y0, 4)
        for node in circuit.nodes:
            if node == "in":
                continue
            sequence = moments.sequence_for(system.index.node(node))
            assert sequence[0] < 0 and sequence[1] < 0
            assert sequence[2] > 0 and sequence[3] < 0

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_first_order_awe_pole_is_reciprocal_elmore(self, nodes, seed):
        from repro import AweAnalyzer

        circuit = random_rc_tree(nodes, seed=seed)
        leaf = circuit.nodes[-1]
        analyzer = AweAnalyzer(circuit, {"Vin": Step(0, 1)})
        response = analyzer.response(leaf, order=1)
        elmore = elmore_delays(circuit)[leaf]
        assert response.poles[0].real == pytest.approx(-1.0 / elmore, rel=1e-9)


# ----------------------------------------------------------------------
# LTI physics properties of the full driver
# ----------------------------------------------------------------------


class TestDriverLtiProperties:
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.25, max_value=8.0))
    @settings(max_examples=15, deadline=None)
    def test_homogeneity(self, nodes, seed, scale):
        """Scaling the stimulus scales the response (linearity)."""
        from repro import AweAnalyzer

        circuit = random_rc_tree(nodes, seed=seed)
        leaf = circuit.nodes[-1]
        base = AweAnalyzer(circuit, {"Vin": Step(0, 1.0)}).response(leaf, order=2)
        scaled = AweAnalyzer(circuit, {"Vin": Step(0, scale)}).response(leaf, order=2)
        t = np.linspace(0, 8 * base.waveform.dominant_time_constant(), 80)
        np.testing.assert_allclose(
            scaled.waveform.evaluate(t), scale * base.waveform.evaluate(t),
            rtol=1e-8, atol=1e-12,
        )

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=1e-10, max_value=5e-9))
    @settings(max_examples=15, deadline=None)
    def test_time_shift_invariance(self, nodes, seed, delay):
        """Delaying the stimulus delays the response, exactly."""
        from repro import AweAnalyzer

        circuit = random_rc_tree(nodes, seed=seed)
        leaf = circuit.nodes[-1]
        base = AweAnalyzer(circuit, {"Vin": Step(0, 5.0)}).response(leaf, order=2)
        delayed = AweAnalyzer(
            circuit, {"Vin": Step(0, 5.0, delay=delay)}
        ).response(leaf, order=2)
        t = np.linspace(0, 8 * base.waveform.dominant_time_constant(), 60)
        np.testing.assert_allclose(
            delayed.waveform.evaluate(t + delay), base.waveform.evaluate(t),
            rtol=1e-8, atol=1e-12,
        )

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_final_value_is_dc_solution(self, nodes, seed):
        from repro import AweAnalyzer, MnaSystem
        from repro.analysis.dcop import dc_operating_point

        circuit = random_rc_tree(nodes, seed=seed)
        leaf = circuit.nodes[-1]
        # stabilize=True: an occasional ill-conditioned q=2 fit throws a
        # spurious RHP pole even on RC trees (the Sec. 3.3 scenario);
        # partial Padé preserves the matched final value regardless.
        response = AweAnalyzer(circuit, {"Vin": Step(0, 5.0)}).response(
            leaf, order=2, stabilize=True
        )
        system = MnaSystem(circuit)
        x = dc_operating_point(system, {"Vin": 5.0})
        assert response.waveform.final_value() == pytest.approx(
            float(x[system.index.node(leaf)]), rel=1e-10
        )


# ----------------------------------------------------------------------
# Stimulus properties
# ----------------------------------------------------------------------


class TestStimulusProperties:
    @given(pwl_stimuli())
    @settings(max_examples=60, deadline=None)
    def test_event_decomposition_reconstructs(self, stimulus):
        t = np.linspace(0.0, 1.5e-6, 700)
        total = np.full_like(t, stimulus.initial_value)
        for event in stimulus.events():
            active = t >= event.time
            total += np.where(active, event.step + event.slope_delta * (t - event.time), 0.0)
        np.testing.assert_allclose(total, stimulus.value(t), rtol=1e-7, atol=1e-6)

    @given(
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=1e-12, max_value=1e-6),
    )
    @settings(max_examples=50, deadline=None)
    def test_ramp_slopes_cancel(self, v0, v1, rise):
        events = Ramp(v0, v1, rise_time=rise).events()
        assert sum(e.slope_delta for e in events) == pytest.approx(0.0, abs=1e-20)

    @given(
        st.floats(min_value=0, max_value=5),
        st.floats(min_value=0.1, max_value=5),
        st.floats(min_value=0, max_value=1e-9),
        st.floats(min_value=1e-12, max_value=1e-9),
        st.floats(min_value=1e-12, max_value=1e-9),
        st.floats(min_value=0, max_value=1e-9),
    )
    @settings(max_examples=50, deadline=None)
    def test_pulse_returns_to_baseline(self, v0, amp, delay, rise, fall, width):
        pulse = Pulse(v0, v0 + amp, delay=delay, rise=rise, width=width, fall=fall)
        assert pulse.final_value == pytest.approx(v0, abs=1e-9)
        events = pulse.events()
        assert sum(e.step for e in events) + 0.0 == pytest.approx(0.0, abs=1e-9)
        assert sum(e.slope_delta for e in events) == pytest.approx(0.0, abs=1e-3)
