"""Tests for the service result cache (`repro.service.cache`)."""

import json
import threading

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.report import REPORT_SCHEMA
from repro.service.cache import ResultCache


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.reset()
    yield
    faults.reset()


def body(tag: str, pad: int = 0) -> bytes:
    """A schema-tagged JSON body (what the server actually stores)."""
    document = {"schema": REPORT_SCHEMA, "tag": tag, "pad": "x" * pad}
    return (json.dumps(document) + "\n").encode()


class TestLru:
    def test_miss_then_hit(self):
        cache = ResultCache(max_bytes=1 << 20)
        assert cache.get("k1") is None
        cache.put("k1", body("one"))
        assert cache.get("k1") == body("one")
        stats = cache.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["cache_stores"] == 1
        assert stats["cache_entries"] == 1

    def test_byte_budget_evicts_least_recently_used(self):
        one, two, three = body("one", 300), body("two", 300), body("three", 300)
        cache = ResultCache(max_bytes=len(one) + len(two) + 10)
        cache.put("one", one)
        cache.put("two", two)
        cache.get("one")          # refresh: "two" is now the LRU entry
        cache.put("three", three)  # must evict exactly one entry: "two"
        assert cache.get("one") is not None
        assert cache.get("three") is not None
        assert cache.get("two") is None
        assert cache.stats()["cache_evictions"] == 1
        assert cache.stats()["cache_bytes"] <= cache.max_bytes

    def test_replacing_a_key_reclaims_its_bytes(self):
        cache = ResultCache(max_bytes=1 << 20)
        cache.put("k", body("a", 500))
        cache.put("k", body("b", 10))
        assert cache.stats()["cache_bytes"] == len(body("b", 10))
        assert cache.get("k") == body("b", 10)

    def test_oversize_body_is_not_cached_in_memory(self):
        cache = ResultCache(max_bytes=64)
        cache.put("big", body("big", 500))
        assert len(cache) == 0
        assert cache.stats()["cache_oversize_skips"] == 1
        # It never evicted anything to make room it could not provide.
        assert cache.stats()["cache_evictions"] == 0

    def test_oversize_skips_counted_once_not_per_disk_promotion(self, tmp_path):
        """Regression: a get() that promotes the disk copy back toward
        memory re-skips the oversize body but must not re-count it —
        the counter reports oversize *stores*, not touches."""
        directory = str(tmp_path / "cache")
        cache = ResultCache(max_bytes=64, directory=directory)
        big = body("big", 500)
        cache.put("big", big)
        assert cache.stats()["cache_oversize_skips"] == 1
        for _ in range(3):
            assert cache.get("big") == big  # served from disk every time
        stats = cache.stats()
        assert stats["cache_disk_hits"] == 3
        assert stats["cache_oversize_skips"] == 1

    def test_rejects_non_bytes(self):
        cache = ResultCache()
        with pytest.raises(TypeError):
            cache.put("k", {"schema": REPORT_SCHEMA})

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestDiskTier:
    def test_restart_warm(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = ResultCache(max_bytes=1 << 20, directory=directory)
        first.put("k1", body("persisted"))

        second = ResultCache(max_bytes=1 << 20, directory=directory)
        assert second.get("k1") == body("persisted")
        stats = second.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_disk_hits"] == 1
        # Promoted into memory: the next hit does not touch the disk.
        assert second.get("k1") == body("persisted")
        assert second.stats()["cache_disk_hits"] == 1

    def test_corrupt_disk_entry_is_dropped(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("k1", body("fine"))
        path = tmp_path / "cache" / "k1.json"
        path.write_bytes(b'{"schema": "repro.run-')  # truncated write
        cache.clear()
        assert cache.get("k1") is None
        assert not path.exists()

    def test_wrong_schema_on_disk_is_dropped(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        (tmp_path / "cache").mkdir()
        (tmp_path / "cache" / "k1.json").write_bytes(
            b'{"schema": "repro.run-report/0"}')
        assert cache.get("k1") is None
        assert not (tmp_path / "cache" / "k1.json").exists()

    def test_memory_only_cache_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = ResultCache()
        cache.put("k1", body("one"))
        assert list(tmp_path.iterdir()) == []

    def test_uncreatable_directory_is_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_bytes(b"")  # a *file* where the parent dir must go
        cache = ResultCache(directory=str(blocker / "cache"))
        cache.put("k1", body("one"))  # must not raise
        assert cache.get("k1") == body("one")
        assert cache.stats()["cache_disk_store_failures"] == 1

    def test_injected_store_fault_is_counted_and_survived(self, tmp_path):
        faults.install(FaultPlan.parse("cache_io_store=1:x2"))
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("k1", body("one"))
        cache.put("k2", body("two"))
        cache.put("k3", body("three"))  # probe cap exhausted: this lands
        stats = cache.stats()
        assert stats["cache_disk_store_failures"] == 2
        assert stats["cache_stores"] == 3
        # Memory tier was never affected; only k3 reached the disk.
        assert cache.get("k1") == body("one")
        restarted = ResultCache(directory=directory)
        assert restarted.get("k1") is None
        assert restarted.get("k3") == body("three")

    def test_injected_load_fault_reads_as_miss(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("k1", body("one"))
        cache.clear()
        faults.install(FaultPlan.parse("cache_io_load=1:x1"))
        assert cache.get("k1") is None          # injected read error
        assert cache.get("k1") == body("one")   # disk is fine afterwards


class TestThreadSafety:
    def test_concurrent_puts_and_gets_stay_consistent(self):
        cache = ResultCache(max_bytes=16 * 1024)
        errors = []

        def hammer(tag):
            try:
                for i in range(200):
                    key = f"{tag}-{i % 7}"
                    cache.put(key, body(key, 40))
                    got = cache.get(key)
                    assert got is None or got == body(key, 40)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in "abcd"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["cache_bytes"] <= cache.max_bytes
        assert stats["cache_stores"] == 800


class TestDiskSchemas:
    """Both result schemas persist: an `/sta` body on disk must survive
    a restart exactly like a run-report (it used to be unlinked as
    corrupt, silently re-running every persisted STA request)."""

    def test_sta_report_round_trips_through_disk(self, tmp_path):
        from repro.report import STA_REPORT_SCHEMA

        directory = str(tmp_path / "cache")
        sta = (json.dumps({"schema": STA_REPORT_SCHEMA,
                           "kind": "sta", "design": "d"}) + "\n").encode()
        ResultCache(directory=directory).put("sta-key", sta)

        rebooted = ResultCache(directory=directory)
        assert rebooted.get("sta-key") == sta
        assert rebooted.stats()["cache_disk_hits"] == 1
        assert (tmp_path / "cache" / "sta-key.json").exists()
