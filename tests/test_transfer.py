"""Tests for transfer-function AWE (frequency-domain reduction)."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem, Step, circuit_poles, simulate
from repro.core.transfer import (
    exact_frequency_response,
    reduce_transfer,
    transfer_moments,
)
from repro.errors import ApproximationError
from repro.papercircuits import fig25_rlc_ladder, rc_ladder


class TestTransferMoments:
    def test_single_rc_moments(self, single_rc):
        system = MnaSystem(single_rc)
        moments = transfer_moments(system, "Vin", "1", 4)
        # H(s) = 1/(1+sτ): m_k = (−τ)^k.
        tau = 1e-9
        np.testing.assert_allclose(moments, [(-tau) ** k for k in range(4)],
                                   rtol=1e-12)

    def test_m0_is_dc_gain(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        moments = transfer_moments(system, "Vin", "3", 1)
        assert moments[0] == pytest.approx(1.0)

    def test_m1_is_negative_elmore(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        moments = transfer_moments(system, "Vin", "3", 2)
        elmore = 1e3 * (3 + 2 + 1) * 1e-12
        assert moments[1] == pytest.approx(-elmore)

    def test_ground_rejected(self, single_rc):
        system = MnaSystem(single_rc)
        with pytest.raises(ApproximationError):
            transfer_moments(system, "Vin", "0", 2)


class TestReduceTransfer:
    def test_full_order_recovers_exact_poles(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        model = reduce_transfer(system, "Vin", "3", 3)
        exact = circuit_poles(system).poles
        np.testing.assert_allclose(np.sort(model.poles.real),
                                   np.sort(exact.real), rtol=1e-8)

    def test_dc_gain_preserved_at_any_order(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        for order in (1, 2, 3):
            model = reduce_transfer(system, "Vin", "3", order)
            assert model.dc_gain == pytest.approx(1.0, rel=1e-9)

    def test_frequency_response_accuracy_improves_with_order(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        omegas = np.logspace(7, 10.5, 60)
        exact = exact_frequency_response(system, "Vin", "3", omegas)
        errors = []
        for order in (1, 2, 3):
            model = reduce_transfer(system, "Vin", "3", order)
            errors.append(np.abs(model.frequency_response(omegas) - exact).max())
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 1e-9

    def test_complex_pole_circuit(self):
        circuit = fig25_rlc_ladder()
        system = MnaSystem(circuit)
        model = reduce_transfer(system, "Vin", "3", 6)
        exact = circuit_poles(system).poles
        np.testing.assert_allclose(
            np.sort_complex(model.poles), np.sort_complex(exact), rtol=1e-6
        )

    def test_step_response_matches_time_domain(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        model = reduce_transfer(system, "Vin", "3", 3)
        reference = simulate(rc_ladder3, {"Vin": Step(0, 5)}, 2e-8).voltage("3")
        values = model.step_response(reference.times, amplitude=5.0)
        assert np.abs(values - reference.values).max() < 2e-3 * 5

    def test_stability_flag(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        assert reduce_transfer(system, "Vin", "3", 2).is_stable

    def test_reuses_precomputed_moments(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        moments = transfer_moments(system, "Vin", "3", 8)
        a = reduce_transfer(system, "Vin", "3", 2, moments=moments)
        b = reduce_transfer(system, "Vin", "3", 2)
        np.testing.assert_allclose(np.sort(a.poles.real), np.sort(b.poles.real))


class TestShiftedExpansion:
    def test_exact_poles_from_any_expansion_point(self, rc_ladder3):
        from repro import circuit_poles

        system = MnaSystem(rc_ladder3)
        exact = np.sort(circuit_poles(system).poles.real)
        for s0 in (0.0, 5e8, 3e9):
            model = reduce_transfer(system, "Vin", "3", 3, expansion_point=s0)
            np.testing.assert_allclose(np.sort(model.poles.real), exact, rtol=1e-7)

    def test_moments_match_taylor_coefficients(self, single_rc):
        # H(s) = 1/(1+sτ) about s0: coefficients (−τ)^k/(1+s0τ)^{k+1}.
        from repro.core.transfer import transfer_moments

        system = MnaSystem(single_rc)
        tau, s0 = 1e-9, 2e9
        moments = transfer_moments(system, "Vin", "1", 4, expansion_point=s0)
        base = 1.0 + s0 * tau
        expected = [(-tau) ** k / base ** (k + 1) for k in range(4)]
        np.testing.assert_allclose(moments, expected, rtol=1e-12)

    def test_left_half_plane_expansion_rejected(self, single_rc):
        from repro.core.transfer import transfer_moments

        with pytest.raises(ApproximationError, match="right half plane"):
            transfer_moments(MnaSystem(single_rc), "Vin", "1", 2,
                             expansion_point=-1e9)


class TestDirectTerm:
    @pytest.fixture
    def capacitive_feedthrough(self):
        # A victim coupled capacitively STRAIGHT OFF THE SOURCE NODE:
        # H(∞) = Cc/(Cc+Cv) = 0.2 — unrepresentable by a strictly proper
        # model.  (Coupling taken after a series resistor would roll off
        # and stay proper.)
        ckt = Circuit("feedthrough")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("Rd", "in", "a", 100.0)
        ckt.add_capacitor("Ca", "a", "0", 0.5e-12)
        ckt.add_capacitor("Cc", "in", "v", 0.2e-12)
        ckt.add_capacitor("Cv", "v", "0", 0.8e-12)
        ckt.add_resistor("Rv", "v", "0", 5e3)
        return ckt

    def test_direct_term_captures_high_frequency_limit(self, capacitive_feedthrough):
        system = MnaSystem(capacitive_feedthrough)
        omegas = np.logspace(9, 12.5, 50)
        exact = exact_frequency_response(system, "Vin", "v", omegas)
        # The strictly proper form cannot represent this transfer AT ALL:
        # its Padé degenerates (a pole at infinity = the feedthrough term
        # in disguise) at every order.
        from repro.errors import MomentMatrixError

        for q in (1, 2):
            with pytest.raises(MomentMatrixError):
                reduce_transfer(system, "Vin", "v", q)
        # One pole + direct term nails the whole band.
        with_d = reduce_transfer(system, "Vin", "v", 1, direct_term=True)
        model = with_d.frequency_response(omegas)
        assert np.abs(model - exact).max() < 0.02 * np.abs(exact).max()
        assert with_d.direct == pytest.approx(0.2, rel=1e-6)

    def test_direct_term_zero_for_proper_transfers(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        model = reduce_transfer(system, "Vin", "3", 3, direct_term=True)
        # The ladder transfer is strictly proper; d must be ~0 relative to
        # the DC gain.
        assert abs(model.direct) < 1e-6

    def test_dc_gain_still_matched(self, capacitive_feedthrough):
        system = MnaSystem(capacitive_feedthrough)
        from repro.core.transfer import transfer_moments

        m0 = transfer_moments(system, "Vin", "v", 1)[0]
        model = reduce_transfer(system, "Vin", "v", 1, direct_term=True)
        assert model.dc_gain == pytest.approx(m0, rel=1e-9)


class TestExactFrequencyResponse:
    def test_single_rc_analytic(self, single_rc):
        system = MnaSystem(single_rc)
        omegas = np.logspace(7, 11, 25)
        values = exact_frequency_response(system, "Vin", "1", omegas)
        analytic = 1.0 / (1.0 + 1j * omegas * 1e-9)
        np.testing.assert_allclose(values, analytic, rtol=1e-10)

    def test_floating_group_handled(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        omegas = np.logspace(6, 11, 10)
        values = exact_frequency_response(system, "Vin", "f", omegas)
        assert np.all(np.isfinite(values))
        # DC limit: zero trapped charge → capacitive divider 0.5/2.5 of
        # the (DC-following) node-1 voltage.
        assert abs(values[0]) == pytest.approx(0.2, rel=1e-3)
        # High frequency: node 1 itself rolls off, so v(f) does too.
        assert abs(values[-1]) < 0.01

    def test_reduced_matches_exact_on_floating_circuit(self, floating_node_circuit):
        # v(f) is exactly 0.2·v(1): a pure single-pole transfer (the
        # floating divider is frequency-independent), so order 1 is exact.
        system = MnaSystem(floating_node_circuit)
        model = reduce_transfer(system, "Vin", "f", 1)
        omegas = np.logspace(6, 11, 30)
        exact = exact_frequency_response(system, "Vin", "f", omegas)
        assert np.abs(model.frequency_response(omegas) - exact).max() < 1e-9
        assert model.poles[0].real == pytest.approx(-1.0 / 1.4e-9, rel=1e-9)


class TestScalingLargerCircuit:
    def test_ladder20_reduction_quality(self):
        circuit = rc_ladder(20)
        system = MnaSystem(circuit)
        omegas = np.logspace(6, 10, 50)
        exact = exact_frequency_response(system, "Vin", "20", omegas)
        model = reduce_transfer(system, "Vin", "20", 4)
        # Four poles capture a 20-pole line to sub-percent over 4 decades.
        error = np.abs(model.frequency_response(omegas) - exact).max()
        assert error < 0.01 * np.abs(exact).max()
