"""Tests pinning the documented properties of the paper-circuit library."""

import numpy as np
import pytest

from repro import MnaSystem, circuit_poles
from repro.circuit.topology import is_rc_tree
from repro.circuit.validation import validate_for_analysis
from repro.papercircuits import (
    coupled_rc_lines,
    fig16_stiff_rc_tree,
    fig22_floating_cap,
    fig25_rlc_ladder,
    fig4_elmore_delays,
    fig4_rc_tree,
    fig9_grounded_resistor,
    random_rc_tree,
    rc_ladder,
    rc_mesh,
    rlc_transmission_ladder,
)


class TestFig4:
    def test_is_rc_tree(self):
        assert is_rc_tree(fig4_rc_tree())

    def test_elmore_at_output_is_700us(self):
        assert fig4_elmore_delays()["4"] == pytest.approx(0.7e-3)

    def test_element_counts(self):
        ckt = fig4_rc_tree()
        assert len(ckt.resistors) == 4 and len(ckt.capacitors) == 4


class TestFig9:
    def test_not_an_rc_tree(self):
        assert not is_rc_tree(fig9_grounded_resistor())

    def test_r5_value_from_text(self):
        assert fig9_grounded_resistor()["R5"].resistance == 4.0

    def test_steady_state_divider(self):
        system = MnaSystem(fig9_grounded_resistor())
        from repro.analysis.dcop import dc_operating_point

        x = dc_operating_point(system, {"Vin": 5.0})
        assert x[system.index.node("4")] == pytest.approx(5.0 * 4.0 / 7.0)


class TestFig16:
    def test_dominant_pole_matches_table1(self):
        poles = circuit_poles(MnaSystem(fig16_stiff_rc_tree())).poles
        assert poles[0].real == pytest.approx(-1.7818e9, rel=1e-4)

    def test_second_pole_near_table1(self):
        poles = np.sort(circuit_poles(MnaSystem(fig16_stiff_rc_tree())).poles.real)[::-1]
        assert poles[1] == pytest.approx(-1.3830e10, rel=0.01)

    def test_ten_poles_widely_spread(self):
        poles = circuit_poles(MnaSystem(fig16_stiff_rc_tree())).poles.real
        assert len(poles) == 10
        assert np.abs(poles).max() / np.abs(poles).min() > 1e4

    def test_sharing_voltage_sets_ic(self):
        ckt = fig16_stiff_rc_tree(sharing_voltage=5.0)
        assert ckt["C6"].initial_voltage == 5.0
        assert ckt["C7"].initial_voltage is None


class TestFig22:
    def test_adds_floating_cap(self):
        ckt = fig22_floating_cap()
        assert ckt["C11"].is_floating
        assert not ckt["C12"].is_floating

    def test_default_variant_is_conductive(self):
        system = MnaSystem(fig22_floating_cap())
        assert system.floating_groups == ()

    def test_capacitive_variant_is_a_floating_group(self):
        # Without the leak resistor, node 12 is reachable only through
        # capacitors (the Sec. III charge-conservation case).
        system = MnaSystem(fig22_floating_cap(leak_resistance=None))
        assert len(system.floating_groups) == 1

    def test_second_order_degrades_then_recovers(self):
        # The documented reason for the default sizing: the paper's
        # 15 % → 0.14 % second-to-third-order error story.
        from repro import AweAnalyzer, Step

        analyzer = AweAnalyzer(fig22_floating_cap(), {"Vin": Step(0, 5)})
        e2 = analyzer.response("7", order=2).error_estimate
        e3 = analyzer.response("7", order=3).error_estimate
        assert e2 > 0.01
        assert e3 < e2 / 10

    def test_delay_increases_vs_fig16(self):
        from repro import AweAnalyzer, Step

        base = AweAnalyzer(fig16_stiff_rc_tree(), {"Vin": Step(0, 5)})
        coupled = AweAnalyzer(fig22_floating_cap(), {"Vin": Step(0, 5)})
        d_base = base.response("7", order=3).delay(4.0)
        d_coupled = coupled.response("7", order=3).delay(4.0)
        assert d_coupled > d_base * 1.05  # the paper reports 1.6 → 1.7 ns


class TestFig25:
    def test_three_complex_pairs(self):
        poles = circuit_poles(MnaSystem(fig25_rlc_ladder())).poles
        assert len(poles) == 6
        assert np.all(np.abs(poles.imag) > 0)

    def test_underdamped_step_overshoots(self):
        from repro import Step, simulate

        result = simulate(fig25_rlc_ladder(), {"Vin": Step(0, 5)}, 1.2e-8)
        assert result.voltage("3").overshoot() > 0.2

    def test_all_stable(self):
        poles = circuit_poles(MnaSystem(fig25_rlc_ladder())).poles
        assert np.all(poles.real < 0)


class TestGenerators:
    def test_rc_ladder_structure(self):
        ckt = rc_ladder(5)
        assert is_rc_tree(ckt)
        assert len(ckt.capacitors) == 5

    def test_random_tree_reproducible(self):
        a, b = random_rc_tree(10, seed=4), random_rc_tree(10, seed=4)
        assert [e.name for e in a] == [e.name for e in b]
        assert all(
            getattr(x, "resistance", None) == getattr(y, "resistance", None)
            for x, y in zip(a, b)
        )

    def test_random_tree_is_tree(self):
        assert is_rc_tree(random_rc_tree(25, seed=8))

    def test_mesh_validates(self):
        validate_for_analysis(rc_mesh(3, 4))

    def test_mesh_pole_count(self):
        ckt = rc_mesh(2, 2)
        assert circuit_poles(MnaSystem(ckt)).order == 4

    def test_transmission_ladder_complex_poles(self):
        ckt = rlc_transmission_ladder(4)
        poles = circuit_poles(MnaSystem(ckt)).poles
        assert np.any(np.abs(poles.imag) > 0)

    def test_coupled_lines_have_floating_caps(self):
        ckt = coupled_rc_lines(3)
        assert any(c.is_floating for c in ckt.capacitors)
        validate_for_analysis(ckt)

    def test_magnetically_coupled_lines_structure(self):
        from repro.papercircuits import magnetically_coupled_lines

        ckt = magnetically_coupled_lines(3)
        assert len(ckt.mutual_inductances) == 3
        assert len(ckt.inductors) == 6
        validate_for_analysis(ckt)
        poles = circuit_poles(MnaSystem(ckt)).poles
        assert np.all(poles.real < 0)

    def test_magnetically_coupled_lines_victim_noise(self):
        from repro import Step, simulate
        from repro.papercircuits import magnetically_coupled_lines

        ckt = magnetically_coupled_lines(2, inductive_k=0.4)
        result = simulate(ckt, {"Vagg": Step(0, 3.3)}, 8e-9,
                          refine_tolerance=1e-3)
        victim = result.voltage("v2")
        assert np.abs(victim.values).max() > 0.02
        assert abs(victim.values[-1]) < 5e-3  # noise dies out

    def test_generator_argument_validation(self):
        from repro.errors import CircuitError

        with pytest.raises(CircuitError):
            rc_ladder(0)
        with pytest.raises(CircuitError):
            rc_mesh(0, 3)
        with pytest.raises(CircuitError):
            random_rc_tree(0, seed=1)


class TestGeneratorValidation:
    """Every generator rejects bad parameters up front — before building a
    deck that would only fail later as a singular MNA system (or, for a
    randomised range, only on the unlucky seeds)."""

    def test_sections_must_be_positive_integers(self):
        from repro.errors import CircuitError
        from repro.papercircuits import clock_h_tree, magnetically_coupled_lines

        for call in (
            lambda: rc_ladder(-1),
            lambda: rc_ladder(True),     # bool is not a section count
            lambda: rc_ladder(2.0),      # nor is a float
            lambda: rc_mesh(3, 0),
            lambda: rlc_transmission_ladder(0),
            lambda: clock_h_tree(0),
            lambda: magnetically_coupled_lines(0),
            lambda: coupled_rc_lines(0),
        ):
            with pytest.raises(CircuitError):
                call()

    @pytest.mark.parametrize("bad", [0.0, -100.0, float("nan"), float("inf"), "100"])
    def test_element_values_must_be_positive_finite_numbers(self, bad):
        from repro.errors import CircuitError
        from repro.papercircuits import clock_h_tree, magnetically_coupled_lines

        for call in (
            lambda: rc_ladder(3, resistance=bad),
            lambda: rc_ladder(3, capacitance=bad),
            lambda: rc_mesh(2, 2, resistance=bad),
            lambda: rlc_transmission_ladder(2, l_per_section=bad),
            lambda: rlc_transmission_ladder(2, r_source=bad),
            lambda: clock_h_tree(2, leaf_load=bad),
            lambda: magnetically_coupled_lines(2, c_coupling=bad),
            lambda: coupled_rc_lines(2, coupling=bad),
        ):
            with pytest.raises(CircuitError):
                call()

    def test_random_ranges_validated_up_front(self):
        from repro.errors import CircuitError

        with pytest.raises(CircuitError, match="lower bound"):
            random_rc_tree(5, seed=1, r_range=(0.0, 100.0))
        with pytest.raises(CircuitError, match="upper bound"):
            random_rc_tree(5, seed=1, c_range=(1e-15, float("inf")))
        with pytest.raises(CircuitError, match="reversed"):
            random_rc_tree(5, seed=1, r_range=(500.0, 50.0))
        with pytest.raises(CircuitError, match="pair"):
            random_rc_tree(5, seed=1, r_range=100.0)

    def test_clock_tree_imbalance_domain(self):
        from repro.errors import CircuitError
        from repro.papercircuits import clock_h_tree

        # imbalance >= 1 could jitter a segment resistance to <= 0.
        with pytest.raises(CircuitError, match="imbalance"):
            clock_h_tree(2, imbalance=1.0, imbalance_seed=7)
        with pytest.raises(CircuitError, match="imbalance"):
            clock_h_tree(2, imbalance=-0.1, imbalance_seed=7)
        assert clock_h_tree(2, imbalance=0.3, imbalance_seed=7) is not None

    def test_inductive_coupling_domain(self):
        from repro.errors import CircuitError
        from repro.papercircuits import magnetically_coupled_lines

        # |k| must be strictly inside (0, 1): |k| >= 1 is not passive.
        for k in (0.0, 1.0, -1.0, 1.5):
            with pytest.raises(CircuitError, match="inductive_k"):
                magnetically_coupled_lines(2, inductive_k=k)
        assert magnetically_coupled_lines(2, inductive_k=-0.4) is not None

    def test_error_messages_name_the_parameter(self):
        from repro.errors import CircuitError

        with pytest.raises(CircuitError, match="rc_ladder capacitance"):
            rc_ladder(3, capacitance=-1e-15)
        with pytest.raises(CircuitError, match="rc_mesh resistance"):
            rc_mesh(2, 2, resistance=0.0)
