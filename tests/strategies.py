"""Shared hypothesis strategies and differential-test helpers.

One home for the pieces the property/differential/writer suites (and the
conformance tests) all need: the standard step stimulus, the calibrated
L2 bound, the AWE-vs-transient oracle, pole/residue model strategies,
PWL stimulus strategies, the RC-tree moment setup, and the writer round
trip.  Import from here instead of re-defining per module.
"""

import numpy as np
from hypothesis import HealthCheck, assume, settings, strategies as st

from repro import AweAnalyzer, MnaSystem, Step, parse_netlist, simulate
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.analysis.sources import PWL
from repro.circuit.writer import write_netlist
from repro.papercircuits import random_rc_tree
from repro.waveform import l2_error

#: The standard 5 V step drive used across the differential suites.
STIM = {"Vin": Step(0.0, 5.0)}

#: Relative L2 bound for "high-order AWE matches the converged transient".
#: The auto-escalated model targets 0.5 %; the bound leaves room for the
#: transient reference's own refinement tolerance.
L2_BOUND = 0.02

#: Hypothesis profile for tests whose examples each run a transient
#: reference: few examples, no deadline, no too-slow health check.
differential_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def awe_vs_transient_l2(circuit, stimuli, node, **response_options) -> float:
    """Relative L2 error of the AWE response against the TR-BDF2 reference."""
    analyzer = AweAnalyzer(circuit, stimuli)
    response = analyzer.response(node, **response_options)
    t_stop = response.waveform.suggested_window()
    reference = simulate(
        circuit, stimuli, t_stop, refine_tolerance=1e-4
    ).voltage(node)
    return l2_error(reference, response.waveform.to_waveform(reference.times))


def roundtrip(circuit, stimuli=None):
    """Parse the written netlist back into a deck."""
    return parse_netlist(write_netlist(circuit, stimuli))


def tree_setup(nodes, seed, v=1.0):
    """A random RC tree plus its MNA system and homogeneous start vector."""
    circuit = random_rc_tree(nodes, seed=seed)
    system = MnaSystem(circuit)
    state = resolve_initial_storage_state(system, {"Vin": 0.0})
    x0 = initial_operating_point(circuit, system, state, {"Vin": v})
    x_final = dc_operating_point(system, {"Vin": v})
    return circuit, system, x0 - x_final


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

real_poles = st.lists(
    st.floats(min_value=-1e3, max_value=-1e-3),
    min_size=1,
    max_size=4,
    unique=True,
)

residue_values = st.floats(min_value=-10.0, max_value=10.0).filter(
    lambda x: abs(x) > 1e-3
)


@st.composite
def pole_residue_sets(draw):
    poles = draw(real_poles)
    # Keep the poles separated so the fit is well conditioned.
    poles = sorted(poles)
    assume(all(b / a < 0.8 for a, b in zip(poles, poles[1:])))
    residues = [draw(residue_values) for _ in poles]
    return np.array(poles), np.array(residues)


def moments_of(poles, residues, count):
    """The exact moment sequence (m₋₁, m₀, …) of a pole/residue model."""
    sequence = [float(np.sum(residues))]
    for k in range(count):
        sequence.append(float(-np.sum(residues / poles ** (k + 1))))
    return np.array(sequence)


#: One dyadic tick (2**-30 s).  Delays and constraints drawn as integer
#: multiples of this make every left-to-right float sum exact, so the
#: STA oracle comparisons below can demand bit equality.
STA_TICK = 2.0 ** -30


def brute_force_paths(graph, arrivals, required):
    """Exhaustive launch-to-endpoint path enumeration — the STA oracle.

    Deliberately independent of the engine: an explicit work-list DFS,
    no heap, no completion bounds.  Arrivals accumulate left to right
    (the documented path convention), so a correct engine matches every
    returned ``(slack, nodes, arrival, required, edges)`` tuple bit for
    bit.  Returns the *complete* path list sorted by ``(slack, nodes)``.
    """
    paths = []
    for start in sorted(arrivals):
        stack = [((start,), (), arrivals[start])]
        while stack:
            nodes, edges, arrived = stack.pop()
            node = nodes[-1]
            if node in required:
                paths.append((required[node] - arrived, nodes, arrived,
                              required[node], edges))
            for edge in graph.out_edges(node):
                stack.append((nodes + (edge.dst,), edges + (edge,),
                              arrived + edge.delay))
    paths.sort(key=lambda p: (p[0], p[1]))
    return paths


@st.composite
def timing_dags(draw):
    """A random timing DAG with dyadic delays plus its constraints.

    Returns ``(graph, arrivals, required, k)``.  Node indices only ever
    link low → high, so the graph is a DAG by construction; every
    in-degree-0 node gets a launch arrival and every out-degree-0 node a
    required time (plus occasionally an internal endpoint), so every
    path the enumerator finds is constrained.
    """
    from repro.sta import TimingGraph

    n = draw(st.integers(min_value=2, max_value=8))
    names = [f"v{i}" for i in range(n)]
    graph = TimingGraph("hypothesis dag")
    for name in names:
        graph.add_node(name)
    for j in range(1, n):
        preds = draw(st.lists(st.integers(min_value=0, max_value=j - 1),
                              unique=True, max_size=min(j, 3)))
        for i in preds:
            graph.add_edge(names[i], names[j],
                           draw(st.integers(1, 4096)) * STA_TICK)
    sources = [v for v in names if not graph.in_edges(v)]
    sinks = [v for v in names if not graph.out_edges(v)]
    arrivals = {v: draw(st.integers(0, 1024)) * STA_TICK for v in sources}
    required = {v: draw(st.integers(4096, 65536)) * STA_TICK for v in sinks}
    for idx in draw(st.lists(st.integers(0, n - 1), unique=True, max_size=2)):
        required.setdefault(names[idx],
                            draw(st.integers(4096, 65536)) * STA_TICK)
    k = draw(st.integers(min_value=0, max_value=12))
    return graph, arrivals, required, k


@st.composite
def pwl_stimuli(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    # Breakpoints on a 10 ns grid: realistic deck resolution, and keeps the
    # slope·time products in a range where reconstruction round-off stays
    # well under the assertion tolerance.
    ticks = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=100),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    values = [draw(st.floats(min_value=-5.0, max_value=5.0)) for _ in ticks]
    return PWL([(tick * 1e-8, value) for tick, value in zip(ticks, values)])
