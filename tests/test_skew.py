"""Tests for the clock H-tree generator and skew analysis."""

import numpy as np
import pytest

from repro import Step, simulate
from repro.circuit.topology import is_rc_tree
from repro.errors import AnalysisError, CircuitError
from repro.papercircuits import clock_h_tree
from repro.timing import skew_report, tree_leaves


class TestClockHTree:
    def test_leaf_count(self):
        for levels in (1, 2, 3):
            circuit = clock_h_tree(levels)
            assert len(tree_leaves(circuit)) == 2 ** levels

    def test_is_rc_tree(self):
        assert is_rc_tree(clock_h_tree(3))

    def test_balanced_tree_is_symmetric(self):
        circuit = clock_h_tree(3)
        leaves = tree_leaves(circuit)
        resistances = {circuit[f"R{leaf}"].resistance for leaf in leaves}
        assert len(resistances) == 1

    def test_imbalance_reproducible(self):
        a = clock_h_tree(2, imbalance_seed=4, imbalance=0.2)
        b = clock_h_tree(2, imbalance_seed=4, imbalance=0.2)
        assert a["Rleaf0"].resistance == b["Rleaf0"].resistance

    def test_needs_one_level(self):
        with pytest.raises(CircuitError):
            clock_h_tree(0)


class TestSkewReport:
    def test_balanced_tree_has_zero_skew(self):
        circuit = clock_h_tree(3)
        report = skew_report(circuit, {"Vclk": Step(0, 1)},
                             tree_leaves(circuit), threshold=0.5)
        assert report.skew < 1e-4 * max(report.delays.values())

    def test_imbalanced_tree_has_skew(self):
        circuit = clock_h_tree(3, imbalance_seed=9, imbalance=0.3)
        report = skew_report(circuit, {"Vclk": Step(0, 1)},
                             tree_leaves(circuit), threshold=0.5)
        assert report.skew > 0.02 * max(report.delays.values())
        early_node, early = report.earliest
        late_node, late = report.latest
        assert early < late
        assert report.delays[early_node] == early

    def test_matches_transient_per_leaf(self):
        circuit = clock_h_tree(2, imbalance_seed=5, imbalance=0.25)
        leaves = tree_leaves(circuit)
        report = skew_report(circuit, {"Vclk": Step(0, 1)}, leaves, threshold=0.5)
        horizon = 12 * max(report.delays.values())
        result = simulate(circuit, {"Vclk": Step(0, 1)}, horizon)
        for leaf in leaves:
            true_delay = result.voltage(leaf).threshold_delay(0.5)
            assert report.delays[leaf] == pytest.approx(true_delay, rel=5e-3)

    def test_sorted_delays(self):
        circuit = clock_h_tree(2, imbalance_seed=2, imbalance=0.2)
        report = skew_report(circuit, {"Vclk": Step(0, 1)},
                             tree_leaves(circuit), threshold=0.5)
        values = [v for _, v in report.sorted_delays()]
        assert values == sorted(values)

    def test_no_sinks_rejected(self):
        with pytest.raises(AnalysisError):
            skew_report(clock_h_tree(1), {"Vclk": Step(0, 1)}, [], 0.5)
