"""Tests for the pole/residue waveform models."""

import numpy as np
import pytest

from repro.core.model import AweWaveform, PoleResidueModel
from repro.errors import ApproximationError


def simple_model(offset=5.0, k=-5.0, p=-1e9, t0=0.0, slope=0.0):
    return PoleResidueModel(((complex(p), 1, complex(k)),), offset=offset,
                            slope=slope, t0=t0, name="m")


class TestPoleResidueModel:
    def test_evaluate_matches_closed_form(self):
        model = simple_model()
        t = np.linspace(0, 5e-9, 101)
        np.testing.assert_allclose(model.evaluate(t), 5 - 5 * np.exp(-1e9 * t))

    def test_zero_before_t0(self):
        model = simple_model(t0=1e-9)
        values = model.evaluate(np.array([0.5e-9, 2e-9]))
        assert values[0] == 0.0
        assert values[1] > 0.0

    def test_scalar_time(self):
        model = simple_model()
        assert float(model.evaluate(2e-9)) == pytest.approx(5 - 5 * np.exp(-2))

    def test_scalar_before_t0(self):
        assert float(simple_model(t0=1e-9).evaluate(0.0)) == 0.0

    def test_initial_value(self):
        assert simple_model().initial_value() == pytest.approx(0.0)

    def test_final_value(self):
        assert simple_model().final_value() == pytest.approx(5.0)

    def test_final_value_with_slope_raises(self):
        with pytest.raises(ApproximationError):
            simple_model(slope=1.0).final_value()

    def test_unstable_flagged(self):
        model = PoleResidueModel(((complex(1e9), 1, complex(1.0)),))
        assert not model.is_stable
        with pytest.raises(ApproximationError):
            model.final_value()

    def test_complex_pair_is_real(self):
        p = -1e9 + 4e9j
        k = 1 - 2j
        model = PoleResidueModel(
            ((p, 1, k), (np.conj(p), 1, np.conj(k))), offset=0.0
        )
        values = model.evaluate(np.linspace(0, 3e-9, 64))
        assert np.isrealobj(values)

    def test_unpaired_complex_rejected_on_eval(self):
        model = PoleResidueModel(((complex(-1e9, 4e9), 1, complex(1, 1)),))
        with pytest.raises(ApproximationError, match="complex"):
            model.evaluate(np.linspace(0, 3e-9, 16))

    def test_repeated_pole_term(self):
        # k·t·e^{pt} via power=2.
        model = PoleResidueModel(((complex(-1.0), 2, complex(3.0)),))
        t = np.linspace(0, 4, 33)
        np.testing.assert_allclose(model.transient_at(t), 3 * t * np.exp(-t))

    def test_dominant_time_constant(self):
        model = PoleResidueModel(
            ((complex(-1e9), 1, complex(1)), (complex(-1e10), 1, complex(1)))
        )
        assert model.dominant_time_constant() == pytest.approx(1e-9)

    def test_empty_model_evaluates_particular_only(self):
        model = PoleResidueModel((), offset=2.0, slope=1.0, t0=1.0)
        assert float(model.evaluate(3.0)) == pytest.approx(4.0)


class TestAweWaveform:
    def test_superposition_of_events(self):
        up = simple_model()
        down = PoleResidueModel(((complex(-1e9), 1, complex(5.0)),),
                                offset=-5.0, t0=2e-9)
        waveform = AweWaveform((up, down))
        # Final: 5 + (−5) = 0 (a pulse).
        assert waveform.final_value() == pytest.approx(0.0)
        assert waveform.evaluate(np.array([1e-9]))[0] > 3.0

    def test_ramp_pair_final_value(self):
        # Two ramping models whose slopes cancel: finite final value.
        up = PoleResidueModel((), offset=0.0, slope=2.0, t0=0.0)
        down = PoleResidueModel((), offset=0.0, slope=-2.0, t0=1.0)
        waveform = AweWaveform((up, down))
        assert waveform.final_value() == pytest.approx(2.0)

    def test_unbalanced_ramp_rejected(self):
        ramp = PoleResidueModel((), offset=0.0, slope=2.0)
        with pytest.raises(ApproximationError, match="ramps forever"):
            AweWaveform((ramp,)).final_value()

    def test_baseline_added(self):
        waveform = AweWaveform((simple_model(),), baseline=1.0)
        assert waveform.final_value() == pytest.approx(6.0)

    def test_suggested_window_covers_transient(self):
        waveform = AweWaveform((simple_model(t0=2e-9),))
        assert waveform.suggested_window() >= 2e-9 + 5e-9

    def test_to_waveform_auto_window(self):
        sampled = AweWaveform((simple_model(),)).to_waveform()
        assert sampled.values[-1] == pytest.approx(5.0, rel=1e-3)

    def test_callable(self):
        waveform = AweWaveform((simple_model(),))
        assert waveform(0.0) == pytest.approx(0.0)

    def test_stability_aggregate(self):
        good = simple_model()
        bad = PoleResidueModel(((complex(1e9), 1, complex(1.0)),))
        assert AweWaveform((good,)).is_stable
        assert not AweWaveform((good, bad)).is_stable
