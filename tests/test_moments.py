"""Tests for the moment engine (paper eqs. 33–34) and particular solutions."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.core.moments import homogeneous_moments, particular_solution
from repro.errors import AnalysisError


def homogeneous_setup(circuit, v_step):
    """x(0⁺) and steady state for a 0→v step with equilibrium ICs."""
    system = MnaSystem(circuit)
    names = list(system.index.source_names)
    state = resolve_initial_storage_state(system, {n: 0.0 for n in names})
    x0 = initial_operating_point(circuit, system, state, {n: v_step for n in names})
    x_final = dc_operating_point(system, {n: v_step for n in names})
    return system, x0 - x_final


class TestHomogeneousMoments:
    def test_single_rc_analytic(self, single_rc):
        # y(t) = −5 e^{−t/τ}: m_k = −5 (−1)^k τ^{k+1}.
        system, y0 = homogeneous_setup(single_rc, 5.0)
        moments = homogeneous_moments(system, y0, 4)
        tau = 1e-9
        row = system.index.node("1")
        sequence = moments.sequence_for(row)
        expected = [-5.0] + [-5.0 * (-1) ** k * tau ** (k + 1) for k in range(4)]
        np.testing.assert_allclose(sequence, expected, rtol=1e-12)

    def test_m0_is_negative_elmore_times_swing(self, rc_ladder3):
        # m₀ = ∫y dt = −v_ss·T_D for an RC tree step.
        system, y0 = homogeneous_setup(rc_ladder3, 5.0)
        moments = homogeneous_moments(system, y0, 1)
        row = system.index.node("3")
        elmore = 1e3 * 3e-12 + 1e3 * 2e-12 + 1e3 * 1e-12
        assert moments.sequence_for(row)[1] == pytest.approx(-5.0 * elmore)

    def test_moments_match_modal_expansion(self, series_rlc):
        # m_k = −Σ residues/p^{k+1} from the exact eigendecomposition.
        from repro.analysis.poles import exact_homogeneous_response

        system, y0 = homogeneous_setup(series_rlc, 5.0)
        moments = homogeneous_moments(system, y0, 5)
        response = exact_homogeneous_response(system, y0)
        row = system.index.node("b")
        poles, residues = response.component_residues(row)
        for k in range(5):
            expected = -np.sum(residues / poles ** (k + 1))
            assert abs(expected.imag) < 1e-9 * abs(expected.real) + 1e-30
            assert moments.sequence_for(row)[k + 1] == pytest.approx(
                expected.real, rel=1e-9
            )

    def test_extended_is_incremental(self, rc_ladder3):
        system, y0 = homogeneous_setup(rc_ladder3, 5.0)
        base = homogeneous_moments(system, y0, 2)
        extended = base.extended(system, 3)
        assert extended.count == 5
        full = homogeneous_moments(system, y0, 5)
        row = system.index.node("2")
        np.testing.assert_allclose(
            extended.sequence_for(row), full.sequence_for(row), rtol=1e-14
        )

    def test_trapped_charge_rejected(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        bad = np.zeros(system.dimension)
        bad[system.index.node("f")] = 1.0  # carries charge on the island
        with pytest.raises(AnalysisError, match="trapped charge"):
            homogeneous_moments(system, bad, 2)

    def test_floating_moments_have_zero_group_charge(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(floating_node_circuit, system, state, {"Vin": 5.0})
        x_final = dc_operating_point(system, {"Vin": 5.0},
                                     system.group_charge(x0))
        moments = homogeneous_moments(system, x0 - x_final, 3)
        for m in moments.vectors:
            assert abs(system.group_charge(m)[0]) < 1e-24


class TestParticularSolution:
    def test_constant_input(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        particular = particular_solution(system, np.array([5.0]), np.array([0.0]))
        row = system.index.node("3")
        assert particular.c0[row] == pytest.approx(5.0)
        assert particular.c1[row] == pytest.approx(0.0)

    def test_ramp_follows_with_elmore_lag(self, rc_ladder3):
        # For a unit-slope ramp the particular solution at node n is
        # t − T_D(n): the Elmore delay appears as the tracking lag.
        system = MnaSystem(rc_ladder3)
        particular = particular_solution(system, np.array([0.0]), np.array([1.0]))
        row = system.index.node("3")
        elmore = 1e3 * 3e-12 + 1e3 * 2e-12 + 1e3 * 1e-12
        assert particular.c1[row] == pytest.approx(1.0)
        assert particular.c0[row] == pytest.approx(-elmore)

    def test_at_and_row_helpers(self, single_rc):
        system = MnaSystem(single_rc)
        particular = particular_solution(system, np.array([2.0]), np.array([1.0]))
        row = system.index.node("1")
        offset, slope = particular.row(row)
        assert particular.at(3.0)[row] == pytest.approx(offset + 3.0 * slope)

    def test_ramp_into_floating_group_rejected(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", 1.0)
        ckt.add_resistor("R", "a", "0", 1.0)
        ckt.add_capacitor("Cf", "f", "0", 1e-12)
        ckt.add_current_source("I1", "0", "f", 1.0)
        system = MnaSystem(ckt)
        with pytest.raises(AnalysisError, match="floating"):
            particular_solution(system, np.zeros(2), np.array([0.0, 1.0]))

    def test_constant_current_into_floating_group_ramps_charge(self):
        # A constant current source charging an isolated cap: the
        # particular solution must ramp at I/C.
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", 1.0)
        ckt.add_resistor("R", "a", "0", 1.0)
        ckt.add_capacitor("Cf", "f", "0", 1e-12)
        ckt.add_current_source("I1", "0", "f", 1.0)
        system = MnaSystem(ckt)
        u0 = system.source_vector({"I1": 1e-3})
        particular = particular_solution(system, u0, np.zeros(2))
        row = system.index.node("f")
        assert particular.c1[row] == pytest.approx(1e-3 / 1e-12)
