"""Tests for the retrying HTTP client (`repro.service.client`).

A scripted stub server plays back canned responses so the retry loop is
exercised deterministically over real loopback HTTP: transient 429/503
answers (with numeric, HTTP-date, and garbage ``Retry-After`` headers)
followed by success, exhaustion, and the never-retry cases.
"""

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import AnalysisClient, ServiceError, parse_retry_after

OK_DOCUMENT = {"schema": "repro.run-report/1",
               "jobs": [], "totals": {"jobs_failed": 0}}


class _StubHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def _play(self):
        server = self.server
        with server.lock:
            server.requests.append((self.command, self.path))
            if server.script:
                status, headers, payload = server.script.pop(0)
            else:
                status, headers, payload = 200, {}, OK_DOCUMENT
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _play

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture
def stub():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
    server.script = []
    server.requests = []
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    server.url = f"http://127.0.0.1:{server.server_address[1]}"
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def client(stub, **options):
    options.setdefault("retries", 3)
    options.setdefault("backoff_base", 0.001)
    options.setdefault("rng", random.Random(0))
    return AnalysisClient(stub.url, timeout=5.0, **options)


def refusal(status, retry_after=None):
    headers = {} if retry_after is None else {"Retry-After": retry_after}
    return status, headers, {"error": "scripted refusal", "status": status}


class TestParseRetryAfter:
    def test_delta_seconds(self):
        assert parse_retry_after("2") == 2.0
        assert parse_retry_after("0.25") == 0.25
        assert parse_retry_after(" 3 ") == 3.0

    def test_negative_delta_clamps_to_zero(self):
        assert parse_retry_after("-5") == 0.0

    def test_http_date_in_the_future(self):
        import datetime

        when = (datetime.datetime.now(datetime.timezone.utc)
                + datetime.timedelta(seconds=120))
        parsed = parse_retry_after(
            when.strftime("%a, %d %b %Y %H:%M:%S GMT"))
        assert parsed is not None
        assert 100.0 < parsed <= 121.0

    def test_http_date_in_the_past_clamps_to_zero(self):
        assert parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT") == 0.0

    def test_garbage_is_no_hint_not_a_crash(self):
        # Regression: float("soon") used to escape as ValueError, masking
        # the 429/503 the header rode in on.
        for value in ("soon", "a while", "12 parsecs", "", "  ", None):
            assert parse_retry_after(value) is None


class TestRetryLoop:
    def test_transient_503_then_success(self, stub):
        stub.script[:] = [refusal(503, "0.01")]
        outcome = client(stub).analyze("deck", ["out"])
        assert outcome.ok
        assert len(stub.requests) == 2

    def test_transient_429_then_success(self, stub):
        stub.script[:] = [refusal(429, "0.01"), refusal(429, "0.01")]
        c = client(stub)
        assert c.analyze("deck", ["out"]).ok
        stats = c.stats()
        assert stats["client_retries"] == 2
        assert stats["retries_exhausted"] == 0
        assert stats["retry_sleep_s"] >= 0.02  # honoured the hints

    def test_garbage_retry_after_still_retries(self, stub):
        stub.script[:] = [refusal(503, "just a moment")]
        assert client(stub).analyze("deck", ["out"]).ok
        assert len(stub.requests) == 2

    def test_exhaustion_raises_last_structured_error(self, stub):
        stub.script[:] = [refusal(503, "0.01")] * 10
        c = client(stub, retries=2)
        with pytest.raises(ServiceError) as excinfo:
            c.analyze("deck", ["out"])
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == 0.01
        assert len(stub.requests) == 3  # 1 try + 2 retries
        stats = c.stats()
        assert stats["client_retries"] == 2
        assert stats["retries_exhausted"] == 1

    def test_400_is_final(self, stub):
        stub.script[:] = [refusal(400)]
        with pytest.raises(ServiceError) as excinfo:
            client(stub).analyze("deck", ["out"])
        assert excinfo.value.status == 400
        assert len(stub.requests) == 1
        assert client(stub).stats()["client_retries"] == 0

    def test_retries_zero_disables_retrying(self, stub):
        stub.script[:] = [refusal(503, "0.01")]
        with pytest.raises(ServiceError):
            client(stub, retries=0).analyze("deck", ["out"])
        assert len(stub.requests) == 1

    def test_budget_overrun_fails_fast_with_last_error(self, stub):
        # The server demands a 30 s wait the 0.05 s budget cannot fund:
        # the client must raise immediately instead of half-sleeping.
        stub.script[:] = [refusal(503, "30")]
        c = client(stub, retry_budget_s=0.05)
        with pytest.raises(ServiceError) as excinfo:
            c.analyze("deck", ["out"])
        assert excinfo.value.status == 503
        assert len(stub.requests) == 1
        stats = c.stats()
        assert stats["retries_exhausted"] == 1
        assert stats["retry_sleep_s"] == 0.0

    def test_connection_refused_is_retryable_status_zero(self):
        c = AnalysisClient("http://127.0.0.1:9", timeout=0.5,
                           retries=1, backoff_base=0.001,
                           rng=random.Random(0))
        with pytest.raises(ServiceError) as excinfo:
            c.analyze("deck", ["out"])
        assert excinfo.value.status == 0
        assert c.stats()["client_retries"] == 1

    def test_healthz_and_metrics_are_never_retried(self, stub):
        stub.script[:] = [refusal(503, "0.01")] * 4
        c = client(stub)
        with pytest.raises(ServiceError):
            c.healthz()
        with pytest.raises(ServiceError):
            c.metrics()
        assert len(stub.requests) == 2  # one each, no resends
        assert c.stats()["client_retries"] == 0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            AnalysisClient("http://127.0.0.1:1", retries=-1)
