"""Execute every fenced Python block in the documentation.

The docs are a contract: each ``.md`` file under ``docs/`` (plus
``examples/README.md``) is scanned for fenced ```` ```python ````
blocks, and all blocks of one file run in order inside one shared
namespace — so a page can build state early (a trace, a report document)
and keep asserting on it later, exactly as a reader following along
would.  A failing block reports the markdown file and the block's line
number.

Blocks run with the working directory set to a temp dir, so examples may
freely write scratch files (decks, reports) without polluting the repo.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    list((REPO_ROOT / "docs").glob("*.md"))
    + [REPO_ROOT / "examples" / "README.md"]
)

_FENCE = re.compile(r"^```python[ \t]*$(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL)


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """``(start_line, source)`` for every fenced python block in a file."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        start_line = text.count("\n", 0, match.start(1)) + 1
        blocks.append((start_line, match.group(1)))
    return blocks


def test_documents_are_discovered():
    names = {path.name for path in DOC_FILES}
    assert "observability.md" in names
    assert "api.md" in names
    assert "scaling.md" in names
    assert "README.md" in names


def test_observability_page_has_executable_examples():
    page = REPO_ROOT / "docs" / "observability.md"
    assert len(python_blocks(page)) >= 5


@pytest.mark.parametrize(
    "doc_path", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_docs_examples_execute(doc_path, tmp_path, monkeypatch):
    blocks = python_blocks(doc_path)
    if not blocks:
        pytest.skip(f"{doc_path.name}: no fenced python blocks")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docs_example_{doc_path.stem}"}
    for start_line, source in blocks:
        # Pad so tracebacks point at the real line in the markdown file.
        padded = "\n" * (start_line - 1) + source
        code = compile(padded, str(doc_path), "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"{doc_path.relative_to(REPO_ROOT)} block at line "
                f"{start_line} failed: {type(exc).__name__}: {exc}"
            ) from exc
