"""Tests for circuit element dataclasses."""

import pytest

from repro.circuit.elements import (
    CCCS,
    CCVS,
    GROUND,
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
    canonical_node,
)
from repro.errors import CircuitError


class TestCanonicalNode:
    def test_ground_aliases(self):
        for alias in ("0", "gnd", "GND", "Gnd"):
            assert canonical_node(alias) == GROUND

    def test_integer_nodes(self):
        assert canonical_node(3) == "3"

    def test_strips_whitespace(self):
        assert canonical_node("  n1 ") == "n1"

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            canonical_node("  ")


class TestResistor:
    def test_conductance(self):
        assert Resistor("R1", "a", "b", 100.0).conductance == 0.01

    def test_rejects_nonpositive(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", 0.0)
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", -5.0)

    def test_rejects_infinite(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", float("inf"))

    def test_rejects_self_loop(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "a", 10.0)

    def test_self_loop_via_ground_alias(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "0", "gnd", 10.0)

    def test_renamed(self):
        r = Resistor("R1", "a", "b", 10.0).renamed("R2")
        assert r.name == "R2" and r.resistance == 10.0

    def test_no_current_variable(self):
        assert not Resistor("R1", "a", "b", 1.0).needs_current_variable


class TestCapacitor:
    def test_grounded_detection(self):
        assert Capacitor("C1", "a", "0", 1e-12).is_grounded
        assert not Capacitor("C1", "a", "0", 1e-12).is_floating

    def test_floating_detection(self):
        cap = Capacitor("C1", "a", "b", 1e-12)
        assert cap.is_floating and not cap.is_grounded

    def test_initial_voltage_default_none(self):
        assert Capacitor("C1", "a", "0", 1e-12).initial_voltage is None

    def test_with_initial_voltage(self):
        cap = Capacitor("C1", "a", "0", 1e-12).with_initial_voltage(2.5)
        assert cap.initial_voltage == 2.5

    def test_rejects_nan_ic(self):
        with pytest.raises(CircuitError):
            Capacitor("C1", "a", "0", 1e-12, initial_voltage=float("nan"))

    def test_rejects_nonpositive_value(self):
        with pytest.raises(CircuitError):
            Capacitor("C1", "a", "0", 0.0)


class TestInductor:
    def test_carries_current_variable(self):
        assert Inductor("L1", "a", "b", 1e-9).needs_current_variable

    def test_with_initial_current(self):
        ind = Inductor("L1", "a", "b", 1e-9).with_initial_current(1e-3)
        assert ind.initial_current == 1e-3

    def test_rejects_nonpositive(self):
        with pytest.raises(CircuitError):
            Inductor("L1", "a", "b", -1e-9)


class TestSources:
    def test_voltage_source_carries_current_variable(self):
        assert VoltageSource("V1", "a", "0", 5.0).needs_current_variable

    def test_current_source_does_not(self):
        assert not CurrentSource("I1", "a", "0", 1e-3).needs_current_variable

    def test_dc0_defaults_zero(self):
        src = VoltageSource("V1", "a", "0", 5.0)
        assert src.dc0 == 0.0

    def test_rejects_nan(self):
        with pytest.raises(CircuitError):
            VoltageSource("V1", "a", "0", float("nan"))


class TestControlledSources:
    def test_vccs_nodes_canonicalised(self):
        g = VCCS("G1", "a", "b", 1e-3, ctrl_positive="gnd", ctrl_negative="c")
        assert g.ctrl_positive == GROUND

    def test_vcvs_carries_current_variable(self):
        e = VCVS("E1", "a", "b", 2.0, "c", "d")
        assert e.needs_current_variable

    def test_cccs_requires_control_name(self):
        with pytest.raises(CircuitError):
            CCCS("F1", "a", "b", 2.0, control_element="")

    def test_ccvs_requires_control_name(self):
        with pytest.raises(CircuitError):
            CCVS("H1", "a", "b", 2.0, control_element="")

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("", "a", "b", 1.0)


class TestImmutability:
    def test_elements_are_frozen(self):
        resistor = Resistor("R1", "a", "b", 10.0)
        with pytest.raises(Exception):
            resistor.resistance = 20.0
