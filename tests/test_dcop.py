"""Tests for DC operating points and t = 0⁺ initial-condition solves."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem
from repro.analysis.dcop import (
    StorageState,
    dc_operating_point,
    equilibrium_storage_state,
    final_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
    storage_state_from_mna,
)
from repro.errors import AnalysisError


class TestDcOperatingPoint:
    def test_caps_open_at_dc(self, single_rc):
        system = MnaSystem(single_rc)
        x = dc_operating_point(system, {"Vin": 5.0})
        assert x[system.index.node("1")] == pytest.approx(5.0)
        assert x[system.index.current("Vin")] == pytest.approx(0.0)

    def test_inductors_short_at_dc(self, series_rlc):
        system = MnaSystem(series_rlc)
        x = dc_operating_point(system, {"Vin": 5.0})
        assert x[system.index.node("a")] == pytest.approx(5.0)
        assert x[system.index.node("b")] == pytest.approx(5.0)

    def test_grounded_resistor_divider(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0")
        ckt.add_resistor("R1", "a", "b", 3.0)
        ckt.add_resistor("R2", "b", "0", 1.0)
        ckt.add_capacitor("C1", "b", "0", 1e-12)
        system = MnaSystem(ckt)
        x = dc_operating_point(system, {"V": 8.0})
        assert x[system.index.node("b")] == pytest.approx(2.0)

    def test_floating_group_with_charge(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        x = dc_operating_point(system, {"Vin": 5.0}, group_charges=np.array([0.0]))
        assert x[system.index.node("f")] == pytest.approx(1.0)

    def test_current_into_floating_group_rejected(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", 1.0)
        ckt.add_resistor("R", "a", "0", 1.0)
        ckt.add_capacitor("C1", "f", "0", 1e-12)
        ckt.add_current_source("I1", "a", "f", 1e-3)
        system = MnaSystem(ckt)
        with pytest.raises(AnalysisError, match="floating"):
            dc_operating_point(system, {"V": 1.0, "I1": 1e-3})


class TestStorageState:
    def test_equilibrium_state(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        state = equilibrium_storage_state(system, {"Vin": 5.0})
        assert all(v == pytest.approx(5.0) for v in state.capacitor_voltages.values())

    def test_storage_state_from_mna_roundtrip(self, series_rlc):
        system = MnaSystem(series_rlc)
        x = dc_operating_point(system, {"Vin": 5.0})
        state = storage_state_from_mna(system, x)
        assert state.capacitor_voltages["C1"] == pytest.approx(5.0)
        assert state.inductor_currents["L1"] == pytest.approx(0.0)

    def test_explicit_ic_overrides_equilibrium(self, charge_share_pair):
        system = MnaSystem(charge_share_pair)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        assert state.capacitor_voltages["C2"] == pytest.approx(5.0)
        assert state.capacitor_voltages["C1"] == pytest.approx(0.0)

    def test_fully_specified_skips_equilibrium(self):
        # Both caps have explicit ICs: no pre-switching solve is needed.
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0")
        ckt.add_resistor("R", "a", "b", 1.0)
        ckt.add_capacitor("C1", "b", "0", 1e-12, initial_voltage=1.5)
        ckt.add_capacitor("C2", "b", "c", 1e-12, initial_voltage=0.5)
        ckt.add_resistor("R2", "c", "0", 1.0)
        system = MnaSystem(ckt)
        state = resolve_initial_storage_state(system, {"V": 0.0})
        assert state.capacitor_voltages == {"C1": 1.5, "C2": 0.5}


class TestInitialOperatingPoint:
    def test_cap_voltages_enforced(self, charge_share_pair):
        system = MnaSystem(charge_share_pair)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(charge_share_pair, system, state, {"Vin": 0.0})
        assert x0[system.index.node("2")] == pytest.approx(5.0)
        assert x0[system.index.node("1")] == pytest.approx(0.0)

    def test_resistive_node_jumps_with_input(self):
        # A purely resistive node follows the source instantaneously.
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0")
        ckt.add_resistor("R1", "a", "b", 1.0)
        ckt.add_resistor("R2", "b", "0", 1.0)
        ckt.add_capacitor("C1", "c", "0", 1e-12)
        ckt.add_resistor("R3", "b", "c", 1.0)
        system = MnaSystem(ckt)
        state = StorageState({"C1": 0.0}, {})
        x0 = initial_operating_point(ckt, system, state, {"V": 6.0})
        # c pinned at 0 by its cap; b is the R1/(R2||R3) divider node.
        assert x0[system.index.node("c")] == pytest.approx(0.0)
        # b sees R1 to 6 V and R2 ∥ R3 (both to 0 V, c being pinned):
        # v_b = 6 · 0.5 / (1 + 0.5) = 2 V.
        assert x0[system.index.node("b")] == pytest.approx(2.0)

    def test_inductor_current_preserved(self, series_rlc):
        system = MnaSystem(series_rlc)
        state = StorageState({"C1": 0.0}, {"L1": 2e-3})
        x0 = initial_operating_point(series_rlc, system, state, {"Vin": 0.0})
        assert x0[system.index.current("L1")] == pytest.approx(2e-3)
        # The 2 mA flows out of node a through R1 from the source at 0 V.
        assert x0[system.index.node("a")] == pytest.approx(-2e-3 * 10.0)

    def test_rates_single_rc(self, single_rc):
        system = MnaSystem(single_rc)
        state = StorageState({"C1": 0.0}, {})
        x0, rates = initial_operating_point(
            single_rc, system, state, {"Vin": 5.0}, with_rates=True
        )
        # dV/dt at t=0+ is I/C = (5/1k)/1p = 5e9 V/s.
        assert rates.capacitor_voltage_rates["C1"] == pytest.approx(5e9)

    def test_rates_unavailable_with_cap_loops(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        result = initial_operating_point(
            floating_node_circuit, system, state, {"Vin": 0.0}, with_rates=True
        )
        x0, rates = result
        assert rates is None

    def test_inconsistent_loop_ics_rejected(self, floating_node_circuit):
        circuit = floating_node_circuit
        circuit.set_initial_voltage("C1", 0.0)
        circuit.set_initial_voltage("Cc", 3.0)   # implies v_f = -3
        circuit.set_initial_voltage("Cf", 2.0)   # contradicts: v_f = 2
        system = MnaSystem(circuit)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        with pytest.raises(AnalysisError, match="contradicts"):
            initial_operating_point(circuit, system, state, {"Vin": 0.0})

    def test_inductor_rates(self, series_rlc):
        system = MnaSystem(series_rlc)
        state = StorageState({"C1": 0.0}, {"L1": 0.0})
        x0, rates = initial_operating_point(
            series_rlc, system, state, {"Vin": 5.0}, with_rates=True
        )
        # dI/dt = V_L/L with the full 5 V across the inductor at t=0+.
        assert rates.inductor_current_rates["L1"] == pytest.approx(5.0 / 10e-9)


class TestFinalOperatingPoint:
    def test_simple_final(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        x = final_operating_point(system, {"Vin": 5.0})
        assert x[system.index.node("3")] == pytest.approx(5.0)

    def test_floating_needs_initial_state(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        with pytest.raises(AnalysisError, match="trapped charge"):
            final_operating_point(system, {"Vin": 5.0})

    def test_floating_final_conserves_charge(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(floating_node_circuit, system, state, {"Vin": 5.0})
        x_final = final_operating_point(system, {"Vin": 5.0}, x0)
        assert x_final[system.index.node("f")] == pytest.approx(1.0)
        np.testing.assert_allclose(system.group_charge(x_final), system.group_charge(x0),
                                   atol=1e-24)
