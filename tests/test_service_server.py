"""Tests for the analysis daemon (`repro.service.server` / `.client`).

Three layers: `AnalysisService.submit` in-process (cache semantics,
admission control, request timeouts, drain), `ServiceServer` +
`AnalysisClient` over real HTTP on a loopback port, and a subprocess
`python -m repro serve` exercised through SIGTERM for the graceful-drain
contract.
"""

import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro import Step, faults
from repro.circuit.writer import write_netlist
from repro.faults import FaultPlan
from repro.papercircuits import rc_mesh
from repro.report import validate_report
from repro.service import (
    AnalysisClient,
    AnalysisService,
    ServiceError,
    ServiceServer,
)


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    """No test leaks an installed fault plan into the next one."""
    faults.reset()
    yield
    faults.reset()

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FAST_DECK = """\
fast deck
Vin in 0 STEP(0 5)
R1 in 1 1000
C1 1 0 1p
R2 1 2 2k
C2 2 0 0.5p
.end
"""

# ~400 unknowns, every node requested: a few hundred ms per analysis —
# long enough to observe queueing, short enough not to drag the suite.
_MESH = rc_mesh(20, 20)
SLOW_DECK = write_netlist(_MESH, {"Vin": Step(0.0, 5.0)})
SLOW_NODES = [cap.positive for cap in _MESH.capacitors]


def request_body(deck, nodes, **params):
    return json.dumps({"deck": deck, "nodes": list(nodes), **params}).encode()


def slow_body(order=4, **params):
    """A distinct-by-``order`` slow request (distinct cache keys)."""
    return request_body(SLOW_DECK, SLOW_NODES, order=order, **params)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture
def service():
    svc = AnalysisService(workers=1, queue_size=4).start()
    yield svc
    svc.close(timeout=60)


class TestSubmit:
    def test_cold_miss_then_variant_hit_is_bit_identical(self, service):
        status, body, headers = service.submit(request_body(FAST_DECK, ["2"]))
        assert status == 200, body
        assert headers["X-Repro-Cache"] == "miss"
        document = validate_report(json.loads(body))
        assert document["totals"]["jobs_failed"] == 0

        variant = ("* regenerated\n"
                   + FAST_DECK.replace("R2 1 2 2k", "R2   1  2  2000"))
        status2, body2, headers2 = service.submit(request_body(variant, ["2"]))
        assert status2 == 200
        assert headers2["X-Repro-Cache"] == "hit"
        assert body2 == body                      # bit-identical warm hit
        assert headers2["X-Repro-Key"] == headers["X-Repro-Key"]

    def test_invalid_json_is_400(self, service):
        status, body, _ = service.submit(b"{not json")
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_unparseable_deck_is_400(self, service):
        status, body, _ = service.submit(
            request_body("bad deck\nR1 only_one_node\n.end\n", ["1"]))
        assert status == 400
        assert json.loads(body)["error_type"] == "NetlistParseError"

    def test_unknown_field_is_400(self, service):
        status, body, _ = service.submit(
            request_body(FAST_DECK, ["2"], verbosity=3))
        assert status == 400
        assert "verbosity" in json.loads(body)["error"]

    def test_missing_nodes_is_400(self, service):
        status, body, _ = service.submit(
            json.dumps({"deck": FAST_DECK}).encode())
        assert status == 400
        assert "nodes" in json.loads(body)["error"]

    def test_failed_job_is_reported_but_not_cached(self, service):
        raw = request_body(FAST_DECK, ["no_such_node"])
        status, body, headers = service.submit(raw)
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"
        assert json.loads(body)["totals"]["jobs_failed"] == 1
        # Re-submitting recomputes: failures never enter the cache.
        _, _, headers2 = service.submit(raw)
        assert headers2["X-Repro-Cache"] == "miss"
        assert service.metrics()["requests_failed"] == 2
        assert service.metrics()["cache_stores"] == 0

    def test_metrics_counts_requests_and_solver_work(self, service):
        service.submit(request_body(FAST_DECK, ["2"]))
        service.submit(request_body(FAST_DECK, ["2"]))
        metrics = service.metrics()
        assert metrics["requests_total"] == 2
        assert metrics["requests_ok"] == 2
        assert metrics["cache_misses"] == 1
        assert metrics["cache_hits"] == 1
        assert metrics["queue_capacity"] == 4
        assert metrics["in_flight"] == 0
        assert metrics["solver"]["lu_factorizations"] >= 1


class TestAdmissionControl:
    def test_full_queue_yields_429_with_retry_after(self):
        service = AnalysisService(workers=1, queue_size=1).start()
        try:
            outcomes = []

            def run(order):
                outcomes.append(service.submit(slow_body(order=order)))

            first = threading.Thread(target=run, args=(4,))
            first.start()
            # The worker must have dequeued the first job (queue empty,
            # one in flight) before the second can occupy the queue slot.
            assert wait_until(
                lambda: service._in_flight == 1 and service._queue.qsize() == 0)
            second = threading.Thread(target=run, args=(5,))
            second.start()
            assert wait_until(lambda: service._queue.qsize() == 1)

            status, body, headers = service.submit(slow_body(order=6))
            assert status == 429
            assert "queue is full" in json.loads(body)["error"]
            assert int(headers["Retry-After"]) >= 1

            first.join(timeout=60)
            second.join(timeout=60)
            assert [status for status, _, _ in outcomes] == [200, 200]
            assert service.metrics()["rejected_queue_full"] == 1
        finally:
            service.close(timeout=60)

    def test_accepted_backlog_never_exceeds_the_bound(self):
        service = AnalysisService(workers=1, queue_size=1).start()
        try:
            statuses = []
            lock = threading.Lock()

            def run(order):
                status, _, _ = service.submit(slow_body(order=order))
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=run, args=(order,))
                       for order in range(2, 8)]
            for thread in threads:
                thread.start()
            assert wait_until(lambda: service._queue.qsize() <= 1)
            assert service._queue.qsize() <= 1  # the bound, not a backlog
            for thread in threads:
                thread.join(timeout=120)
            assert set(statuses) <= {200, 429}  # refused, never backlogged
            assert statuses.count(429) >= 1
        finally:
            service.close(timeout=120)


class TestRequestTimeout:
    def test_slow_request_times_out_with_504(self, service):
        status, body, _ = service.submit(slow_body(order=4, timeout=0.05))
        assert status == 504
        assert "0.05 s budget" in json.loads(body)["error"]
        assert service.metrics()["request_timeouts"] == 1

    def test_service_default_timeout_applies(self):
        service = AnalysisService(workers=1, timeout=0.05).start()
        try:
            status, _, _ = service.submit(slow_body(order=4))
            assert status == 504
        finally:
            service.close(timeout=60)

    def test_fast_request_is_unaffected_by_a_generous_timeout(self, service):
        status, _, headers = service.submit(
            request_body(FAST_DECK, ["2"], timeout=30))
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"


class TestGracefulDrain:
    def test_drain_finishes_in_flight_work_and_refuses_new(self, service):
        outcome = {}

        def run():
            outcome["result"] = service.submit(slow_body(order=4))

        thread = threading.Thread(target=run)
        thread.start()
        assert wait_until(lambda: service._in_flight == 1)
        service.begin_drain()

        status, body, _ = service.submit(request_body(FAST_DECK, ["2"]))
        assert status == 503
        assert "draining" in json.loads(body)["error"]

        health_status, health_body = service.healthz()
        assert health_status == 503
        assert json.loads(health_body)["status"] == "draining"

        assert service.wait_drained(timeout=60)
        thread.join(timeout=60)
        status, body, headers = outcome["result"]
        assert status == 200                    # the in-flight job completed
        assert json.loads(body)["totals"]["jobs_failed"] == 0
        assert service.metrics()["rejected_draining"] == 1

    def test_cache_hits_are_still_served_while_draining(self, service):
        raw = request_body(FAST_DECK, ["2"])
        service.submit(raw)
        service.begin_drain()
        status, _, headers = service.submit(raw)
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"


class TestHttpServer:
    def test_end_to_end_over_http(self):
        with ServiceServer(port=0, workers=2) as server:
            client = AnalysisClient(server.url, timeout=60)
            assert client.healthz()["status"] == "ok"

            cold = client.analyze(FAST_DECK, "2", threshold=2.5)
            assert cold.ok and not cold.cached

            variant = FAST_DECK.replace("0.5p", "500f") + "* tail comment\n"
            warm = client.analyze(variant, ["2"], threshold=2.5)
            assert warm.cached
            assert warm.body == cold.body       # bit-identical over the wire
            assert warm.key == cold.key

            metrics = client.metrics()
            assert metrics["cache_hits"] == 1
            assert metrics["cache_misses"] == 1
            assert metrics["requests_ok"] == 2
            assert metrics["solver"]["lu_factorizations"] >= 1
            assert not metrics["draining"]

    def test_http_error_statuses_surface_as_service_errors(self):
        with ServiceServer(port=0, workers=1) as server:
            client = AnalysisClient(server.url, timeout=30)
            with pytest.raises(ServiceError) as excinfo:
                client.analyze("bad deck\nR1 only_one_node\n.end\n", "2")
            assert excinfo.value.status == 400

            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/nope")
            assert excinfo.value.status == 404
            assert "endpoints" in str(excinfo.value)

    def test_get_metrics_document_is_json_with_content_length(self):
        with ServiceServer(port=0, workers=1) as server:
            with urllib.request.urlopen(server.url + "/metrics", timeout=30) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == "application/json"
                body = resp.read()
                assert int(resp.headers["Content-Length"]) == len(body)
                json.loads(body)

    def test_post_without_content_length_is_411(self):
        # urllib always adds Content-Length for bytes bodies; go lower level.
        import http.client

        with ServiceServer(port=0, workers=1) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.putrequest("POST", "/analyze", skip_accept_encoding=True)
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 411
            finally:
                conn.close()


class TestErrorPathsBypassEngine:
    """Malformed input must be refused at the door with a structured 4xx:
    no worker dispatch, no solver work, no cache write.  The solver
    counters in ``/metrics`` are the witness — they only move when a
    request actually reaches a :class:`BatchEngine`."""

    def _assert_engine_untouched(self, metrics):
        assert metrics["solver"]["lu_factorizations"] == 0
        assert metrics["solver"]["moment_solves"] == 0
        assert metrics["solver"]["responses"] == 0
        assert metrics["cache_stores"] == 0
        assert metrics["cache_misses"] == 0
        assert metrics["in_flight"] == 0

    def test_malformed_json_is_structured_400_without_solver_work(self, service):
        status, body, _ = service.submit(b'{"deck": "x", "nodes": [')
        assert status == 400
        payload = json.loads(body)
        assert payload["status"] == 400
        assert "JSON" in payload["error"]
        self._assert_engine_untouched(service.metrics())

    def test_wrong_field_types_are_structured_400(self, service):
        for raw in (
            json.dumps({"deck": 7, "nodes": ["1"]}).encode(),
            json.dumps({"deck": FAST_DECK, "nodes": []}).encode(),
            json.dumps({"deck": FAST_DECK, "nodes": [2]}).encode(),
            json.dumps({"deck": FAST_DECK, "nodes": ["2"], "order": True}).encode(),
            json.dumps([FAST_DECK, ["2"]]).encode(),
        ):
            status, body, _ = service.submit(raw)
            assert status == 400, raw
            assert json.loads(body)["status"] == 400
        self._assert_engine_untouched(service.metrics())

    def test_unknown_field_is_structured_400_naming_the_field(self, service):
        status, body, _ = service.submit(
            request_body(FAST_DECK, ["2"], shrink_rays=True))
        assert status == 400
        payload = json.loads(body)
        assert "shrink_rays" in payload["error"]
        self._assert_engine_untouched(service.metrics())

    def test_oversized_request_is_413_before_reading_the_body(self):
        import http.client

        from repro.service.server import MAX_BODY_BYTES

        with ServiceServer(port=0, workers=1) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                # Declare a body twice the cap but never send it: the
                # server must refuse on the header alone.
                conn.putrequest("POST", "/analyze")
                conn.putheader("Content-Length", str(2 * MAX_BODY_BYTES))
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 413
                payload = json.loads(response.read())
                assert payload["status"] == 413
                assert str(MAX_BODY_BYTES) in payload["error"]
            finally:
                conn.close()

            client = AnalysisClient(server.url, timeout=60)
            self._assert_engine_untouched(client.metrics())
            # The daemon is unharmed: a well-formed request still works.
            assert client.analyze(FAST_DECK, "2").ok


class TestServeSubprocess:
    """The CLI daemon: ``python -m repro serve`` under real signals."""

    def _spawn(self, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=REPO_ROOT,
        )
        line = proc.stdout.readline()
        assert "repro service listening on " in line, (
            line, proc.stderr.read() if proc.poll() is not None else "")
        return proc, line.strip().rsplit(" ", 1)[-1]

    def test_sigterm_drains_in_flight_work_then_exits_cleanly(self):
        proc, url = self._spawn()
        try:
            client = AnalysisClient(url, timeout=120)
            assert client.healthz()["status"] == "ok"

            outcome = {}

            def run():
                outcome["slow"] = client.analyze(
                    SLOW_DECK, SLOW_NODES, order=4)

            thread = threading.Thread(target=run)
            thread.start()
            # Land the signal while the slow analysis is in flight.
            time.sleep(0.15)
            proc.send_signal(signal.SIGTERM)

            thread.join(timeout=120)
            assert "slow" in outcome, "in-flight request was dropped"
            assert outcome["slow"].ok          # drained, not killed
            assert proc.wait(timeout=60) == 0  # clean exit code
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_second_identical_request_is_a_cache_hit(self):
        proc, url = self._spawn()
        try:
            client = AnalysisClient(url, timeout=120)
            cold = client.analyze(FAST_DECK, "2")
            warm = client.analyze(FAST_DECK, "2")
            assert not cold.cached and warm.cached
            assert warm.body == cold.body
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_crashy_worker_flags_recover_end_to_end(self):
        """``--engine-workers 2 --faults worker_crash=1:x1``: the daemon's
        first analysis loses a pool worker, rebuilds, and still answers
        with zero failed jobs — recovery visible in ``/metrics``."""
        proc, url = self._spawn("--engine-workers", "2",
                                "--faults", "worker_crash=1:x1")
        try:
            client = AnalysisClient(url, timeout=120)
            outcome = client.analyze(FAST_DECK, "2")
            assert outcome.ok
            metrics = client.metrics()
            assert metrics["solver"]["pool_rebuilds"] >= 1
            assert metrics["faults"]["worker_crash"]["fires"] == 1
            assert client.healthz()["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestInjectedHttpFaults:
    def test_injected_429_and_503_are_marked_and_bounded(self, service):
        faults.install(FaultPlan.parse("http_429=1:0.25:x1,http_503=1:x1"))
        status, body, headers = service.submit(request_body(FAST_DECK, ["2"]))
        assert status == 429
        assert headers["X-Repro-Fault"] == "http_429"
        assert headers["Retry-After"] == "0.25"
        assert "injected fault" in json.loads(body)["error"]

        status2, body2, headers2 = service.submit(request_body(FAST_DECK, ["2"]))
        assert status2 == 503
        assert headers2["X-Repro-Fault"] == "http_503"

        # Both probes exhausted: the real path is untouched underneath.
        status3, _, headers3 = service.submit(request_body(FAST_DECK, ["2"]))
        assert status3 == 200
        assert "X-Repro-Fault" not in headers3

        metrics = service.metrics()
        assert metrics["faults_injected"] == 2
        assert metrics["faults"]["http_429"]["fires"] == 1
        assert metrics["faults"]["http_503"]["fires"] == 1

    def test_injected_timeout_stalls_then_serves(self, service):
        faults.install(FaultPlan.parse("http_timeout=1:0.05:x1"))
        began = time.monotonic()
        status, _, _ = service.submit(request_body(FAST_DECK, ["2"]))
        assert status == 200
        assert time.monotonic() - began >= 0.05
        assert service.metrics()["faults_injected"] == 1

    def test_no_plan_means_no_fault_bookkeeping(self, service):
        status, _, _ = service.submit(request_body(FAST_DECK, ["2"]))
        assert status == 200
        metrics = service.metrics()
        assert metrics["faults_injected"] == 0
        assert "faults" not in metrics


class TestDegradedMode:
    def crashy_service(self, threshold=2):
        return AnalysisService(workers=1, queue_size=4, engine_workers=2,
                               degraded_threshold=threshold).start()

    def test_consecutive_crash_requests_flip_healthz_to_degraded(self):
        svc = self.crashy_service(threshold=2)
        try:
            faults.install(FaultPlan.parse("worker_crash=1"))
            for nodes in (["1"], ["2"]):
                status, body, _ = svc.submit(request_body(FAST_DECK, nodes))
                assert status == 200  # structured failure, not an HTTP error
                document = json.loads(body)
                assert document["totals"]["jobs_failed"] == 1
                assert document["jobs"][0]["error_type"] == "WorkerCrashError"

            status, payload = svc.healthz()
            assert status == 503
            health = json.loads(payload)
            assert health["status"] == "degraded"
            assert health["consecutive_worker_failures"] == 2
            metrics = svc.metrics()
            assert metrics["degraded"] is True
            assert metrics["worker_crash_requests"] == 2
            assert metrics["degraded_entries"] == 1
            assert metrics["requests_failed"] == 2
        finally:
            faults.reset()
            svc.close(timeout=60)

    def test_one_clean_request_clears_degraded(self):
        svc = self.crashy_service(threshold=1)
        try:
            faults.install(FaultPlan.parse("worker_crash=1"))
            svc.submit(request_body(FAST_DECK, ["1"]))
            assert svc.healthz()[0] == 503

            faults.reset()  # the environment heals
            status, body, _ = svc.submit(request_body(FAST_DECK, ["2"]))
            assert status == 200
            assert json.loads(body)["totals"]["jobs_failed"] == 0
            status, payload = svc.healthz()
            assert status == 200
            assert json.loads(payload)["consecutive_worker_failures"] == 0
            assert svc.metrics()["degraded"] is False
        finally:
            faults.reset()
            svc.close(timeout=60)

    def test_recovered_rebuild_does_not_count_toward_degradation(self):
        # x1: the single crash is healed by the pool rebuild, so the
        # request comes back clean and the streak never starts.
        svc = self.crashy_service(threshold=1)
        try:
            faults.install(FaultPlan.parse("worker_crash=1:x1"))
            status, body, _ = svc.submit(request_body(FAST_DECK, ["1"]))
            assert status == 200
            assert json.loads(body)["totals"]["jobs_failed"] == 0
            assert svc.healthz()[0] == 200
            assert svc.metrics()["worker_crash_requests"] == 0
            assert svc.metrics()["solver"]["pool_rebuilds"] == 1
        finally:
            faults.reset()
            svc.close(timeout=60)

    def test_degraded_sheds_load_around_a_single_canary(self):
        svc = AnalysisService(workers=2, queue_size=8).start()
        try:
            # Prime the cache, then force the degraded flag directly (the
            # flip itself is covered above; this pins the shed-load
            # semantics deterministically).
            primed = request_body(FAST_DECK, ["2"])
            assert svc.submit(primed)[0] == 200
            with svc._lock:
                svc._degraded = True
                svc._consecutive_crashes = svc.degraded_threshold

            outcome = {}

            def canary():
                outcome["result"] = svc.submit(slow_body())

            thread = threading.Thread(target=canary)
            thread.start()
            try:
                assert wait_until(lambda: svc._in_flight >= 1)

                status, body, headers = svc.submit(
                    request_body(FAST_DECK, ["1"]))
                assert status == 503
                assert "degraded" in json.loads(body)["error"]
                assert int(headers["Retry-After"]) >= 1

                # Cache hits bypass admission: still served while shedding.
                status, _, headers = svc.submit(primed)
                assert status == 200
                assert headers["X-Repro-Cache"] == "hit"
            finally:
                thread.join(timeout=120)

            # The canary completed cleanly and cleared the state.
            assert outcome["result"][0] == 200
            assert svc.metrics()["degraded"] is False
            assert svc.metrics()["rejected_degraded"] == 1
            assert svc.healthz()[0] == 200
        finally:
            svc.close(timeout=60)


def _scrub(value):
    """Strip the wall-clock parts of a run report so two documents can
    be compared for *numeric* identity across runs."""
    drop = {"elapsed_s", "phase_seconds", "wall_time_s", "counters",
            "events", "uptime_s"}
    if isinstance(value, dict):
        return {key: _scrub(item) for key, item in value.items()
                if key not in drop}
    if isinstance(value, list):
        return [_scrub(item) for item in value]
    return value


class TestResilienceAcceptance:
    """The issue's bar: under one worker crash mid-batch plus ~10%
    injected 429/503 at the HTTP boundary, a 50-job run completes with
    zero client-visible failures and numerically identical results."""

    DECKS = [FAST_DECK.replace("R2 1 2 2k", f"R2 1 2 {2000 + i}")
             for i in range(50)]

    def run_all(self, retries):
        with ServiceServer(port=0, workers=2, engine_workers=2) as server:
            client = AnalysisClient(server.url, timeout=120, retries=retries,
                                    backoff_base=0.01, backoff_cap=0.5,
                                    rng=random.Random(7))
            outcomes = [client.analyze(deck, ["2"]) for deck in self.DECKS]
            return outcomes, client.stats(), server.service.metrics()

    def test_fifty_jobs_survive_injected_faults_bit_for_bit(self):
        clean_outcomes, _, _ = self.run_all(retries=0)
        assert all(outcome.ok for outcome in clean_outcomes)

        faults.install(FaultPlan.parse(
            "worker_crash=1:x1,http_429=0.05:0.02,http_503=0.05:0.02",
            seed=1))
        faulty_outcomes, client_stats, metrics = self.run_all(retries=6)

        assert all(outcome.ok for outcome in faulty_outcomes)
        assert [_scrub(outcome.document) for outcome in faulty_outcomes] \
            == [_scrub(outcome.document) for outcome in clean_outcomes]

        # The campaign really injected: the crash fired and was healed,
        # HTTP refusals were absorbed by client retries.
        assert metrics["solver"]["pool_rebuilds"] >= 1
        assert metrics["faults"]["worker_crash"]["fires"] == 1
        assert metrics["faults_injected"] >= 1
        assert client_stats["client_retries"] >= 1
        assert client_stats["retries_exhausted"] == 0
        assert metrics["requests_failed"] == 0
        assert metrics["degraded"] is False


class TestPerEndpointRetryAfter:
    """`Retry-After` hints come from the endpoint's *own* EWMA: a fleet
    of second-long STA jobs must not inflate the back-off quoted to a
    millisecond `/analyze` caller (or vice versa)."""

    STA_DESIGN = {
        "name": "ewma-demo",
        "inputs": [{"name": "i1", "net": "n_in", "arrival": 0.0,
                    "slew": 2e-11, "drive_resistance": 500.0}],
        "outputs": [{"name": "o1", "net": "n_out", "required": 5e-10,
                     "load": 4e-15}],
        "instances": [{"name": "u1", "cell": "INV_X1",
                       "connections": {"A": "n_in", "Y": "n_out"}}],
        "nets": [
            {"name": "n_in", "segments": []},
            {"name": "n_out", "segments": [
                {"a": "root", "b": "o1", "resistance": 200.0,
                 "capacitance": 15e-15}]},
        ],
    }

    def test_queue_full_hint_tracks_each_endpoints_own_average(self):
        service = AnalysisService(workers=1, queue_size=1).start()
        try:
            outcomes = []

            def run(order):
                outcomes.append(service.submit(slow_body(order=order)))

            first = threading.Thread(target=run, args=(4,))
            first.start()
            assert wait_until(
                lambda: service._in_flight == 1
                and service._queue.qsize() == 0)
            second = threading.Thread(target=run, args=(5,))
            second.start()
            assert wait_until(lambda: service._queue.qsize() == 1)

            # Pretend history: analyze jobs have been fast, STA slow.
            with service._lock:
                service._avg_job_s["analyze"] = 3.0
                service._avg_job_s["sta"] = 30.0

            status, _, headers = service.submit(
                request_body(FAST_DECK, ["1"], order=2))
            assert status == 429
            # ceil(3.0 * (qsize 1 + 1)) — the analyze average, doubled.
            assert headers["Retry-After"] == "6"

            sta_body = json.dumps({"design": self.STA_DESIGN}).encode()
            status, _, headers = service.submit(sta_body, kind="sta")
            assert status == 429
            # Same queue, same instant — but the STA hint is 10x.
            assert headers["Retry-After"] == "60"

            first.join(timeout=60)
            second.join(timeout=60)
            assert [status for status, _, _ in outcomes] == [200, 200]
        finally:
            service.close(timeout=60)

    def test_metrics_expose_both_averages_and_they_move_independently(
            self, service):
        seeded = service.metrics()["avg_job_s"]
        assert seeded == {"analyze": 0.05, "sta": 0.05, "sweep": 0.05}

        status, _, _ = service.submit(request_body(FAST_DECK, ["2"]))
        assert status == 200
        moved = service.metrics()["avg_job_s"]
        assert moved["analyze"] != 0.05  # EWMA absorbed the real elapsed
        assert moved["sta"] == 0.05      # untouched by /analyze traffic
        assert moved["sweep"] == 0.05    # likewise
