"""Replay of the persisted regression corpus (``tests/corpus/*.json``).

Every corpus entry is a distilled failure from a past fuzzing campaign
(or an injected-bug exercise); replaying it asserts the bug it caught
stays fixed.  The entries are self-contained — netlist text, output
nodes, check name, calibrated bounds — so they survive generator churn.
"""

import json
import pathlib

import pytest

from repro.conformance import (
    CORPUS_SCHEMA,
    STA_CORPUS_SCHEMA,
    CorpusEntry,
    StaCorpusEntry,
    load_corpus,
    replay_entry,
    write_entry,
)
from repro.errors import ReproError

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 4


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_replays_clean(entry):
    assert replay_entry(entry) == [], entry.description


class TestCorpusFormat:
    def test_files_carry_a_known_schema_marker(self):
        for path in sorted(CORPUS_DIR.glob("*.json")):
            payload = json.loads(path.read_text())
            assert payload["schema"] in (CORPUS_SCHEMA, STA_CORPUS_SCHEMA), path.name
            assert payload["description"], f"{path.name} needs a description"

    def test_both_entry_kinds_are_present(self):
        kinds = {type(entry) for entry in ENTRIES}
        assert CorpusEntry in kinds
        assert StaCorpusEntry in kinds

    def test_write_then_load_is_lossless(self, tmp_path):
        entry = ENTRIES[0]
        path = write_entry(entry, tmp_path)
        assert load_corpus(tmp_path) == [entry]
        # Deterministic bytes: re-export reproduces the file exactly.
        original = path.read_bytes()
        write_entry(entry, tmp_path)
        assert path.read_bytes() == original

    def test_unknown_schema_rejected(self, tmp_path):
        payload = ENTRIES[0].to_dict()
        payload["schema"] = "repro.fuzz-corpus/99"
        (tmp_path / "bad.json").write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="schema"):
            load_corpus(tmp_path)

    def test_unknown_fields_rejected(self, tmp_path):
        payload = ENTRIES[0].to_dict()
        payload["surprise"] = 1
        (tmp_path / "bad.json").write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="surprise"):
            load_corpus(tmp_path)

    def test_missing_directory_is_an_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_entry_rebuilds_a_runnable_case(self):
        entry = ENTRIES[0]
        case = entry.to_case()
        assert case.nodes == entry.nodes
        for node in case.nodes:
            assert case.circuit.has_node(node)
        assert isinstance(entry, CorpusEntry)

    def test_sta_entry_rebuilds_a_runnable_case(self):
        entry = next(e for e in ENTRIES if isinstance(e, StaCorpusEntry))
        case = entry.to_case()
        assert case.kind == "sta"
        assert case.nodes == tuple(sorted(entry.required))
        for node in case.nodes:
            assert case.graph.has_node(node)
        assert case.graph.edge_count == len(entry.edges)

    def test_sta_roundtrip_and_unknown_fields(self, tmp_path):
        entry = next(e for e in ENTRIES if isinstance(e, StaCorpusEntry))
        path = write_entry(entry, tmp_path)
        assert load_corpus(tmp_path) == [entry]
        original = path.read_bytes()
        write_entry(entry, tmp_path)
        assert path.read_bytes() == original
        payload = entry.to_dict()
        payload["surprise"] = 1
        (tmp_path / "bad.json").write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="surprise"):
            load_corpus(tmp_path)

    def test_sta_unknown_schema_rejected(self, tmp_path):
        entry = next(e for e in ENTRIES if isinstance(e, StaCorpusEntry))
        payload = entry.to_dict()
        payload["schema"] = "repro.sta-corpus/99"
        (tmp_path / "bad.json").write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="schema"):
            load_corpus(tmp_path)
