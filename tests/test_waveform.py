"""Tests for the Waveform container and its timing/error metrics."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.waveform import Waveform, l2_error, superpose


def exp_rise(tau=1e-9, v=5.0, n=2001, t_stop=10e-9):
    t = np.linspace(0, t_stop, n)
    return Waveform(t, v * (1 - np.exp(-t / tau)), "rise")


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_rejects_single_sample(self):
        with pytest.raises(AnalysisError):
            Waveform(np.array([0.0]), np.array([0.0]))

    def test_rejects_nonmonotone_time(self):
        with pytest.raises(AnalysisError):
            Waveform(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_interpolation_clamps(self):
        w = Waveform(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        assert w(0.0) == 10.0
        assert w(3.0) == 20.0
        assert w(1.5) == 15.0


class TestAlgebra:
    def test_add_scalar_and_waveform(self):
        w = exp_rise()
        total = w + w
        np.testing.assert_allclose(total.values, 2 * w.values)
        shifted = w + 1.0
        np.testing.assert_allclose(shifted.values, w.values + 1.0)

    def test_sub_and_neg(self):
        w = exp_rise()
        zero = w - w
        assert np.all(zero.values == 0.0)
        assert np.all((-w).values == -w.values)

    def test_scale(self):
        w = exp_rise()
        np.testing.assert_allclose((2 * w).values, 2 * w.values)

    def test_shifted(self):
        w = exp_rise()
        assert w.shifted(1e-9).t_start == pytest.approx(1e-9)

    def test_resampled(self):
        w = exp_rise()
        r = w.resampled(np.linspace(0, 5e-9, 11))
        assert len(r) == 11


class TestTimingMetrics:
    def test_delay_50(self):
        w = exp_rise(tau=1e-9)
        assert w.delay_50() == pytest.approx(1e-9 * np.log(2), rel=1e-3)

    def test_threshold_delay(self):
        w = exp_rise(tau=1e-9, v=5.0)
        assert w.threshold_delay(4.0) == pytest.approx(-1e-9 * np.log(0.2), rel=1e-3)

    def test_threshold_never_crossed(self):
        w = exp_rise(v=5.0)
        with pytest.raises(AnalysisError, match="never crosses"):
            w.threshold_delay(6.0)

    def test_rise_time_exponential(self):
        w = exp_rise(tau=1e-9)
        assert w.rise_time() == pytest.approx(1e-9 * np.log(9), rel=1e-3)

    def test_crossings_direction_filter(self):
        t = np.linspace(0, 2 * np.pi, 1000)
        w = Waveform(t, np.sin(t))
        rising = w.crossings(0.0, rising=True)
        falling = w.crossings(0.0, rising=False)
        assert len(falling) == 1
        assert any(abs(c - np.pi) < 0.01 for c in falling)
        assert len(rising) >= 1

    def test_overshoot_zero_for_monotone(self):
        assert exp_rise().overshoot() == 0.0

    def test_overshoot_of_ringing(self):
        t = np.linspace(0, 10, 5000)
        w = Waveform(t, 1 - np.exp(-t) * np.cos(5 * t))
        assert w.overshoot() > 0.5

    def test_monotone_detection(self):
        assert exp_rise().is_monotone()
        t = np.linspace(0, 10, 500)
        bumpy = Waveform(t, np.exp(-t) * np.sin(t))
        assert not bumpy.is_monotone()

    def test_falling_delay(self):
        t = np.linspace(0, 10e-9, 2001)
        w = Waveform(t, 5 * np.exp(-t / 1e-9))
        assert w.delay_50(v_start=5.0, v_end=0.0) == pytest.approx(
            1e-9 * np.log(2), rel=1e-3
        )


class TestIntegrals:
    def test_integral(self):
        t = np.linspace(0, 1, 101)
        assert Waveform(t, 2 * np.ones(101)).integral() == pytest.approx(2.0)

    def test_settled_area_is_elmore_numerator(self):
        w = exp_rise(tau=1e-9, v=5.0, t_stop=30e-9, n=30001)
        # ∫ (v∞ − v) dt = v∞·τ.
        assert w.settled_area(5.0) == pytest.approx(5e-9, rel=1e-3)


class TestL2Error:
    def test_identical_waveforms(self):
        w = exp_rise()
        assert l2_error(w, w) == 0.0

    def test_known_error(self):
        # Reference e^{-t}, candidate 0: relative error 1.
        t = np.linspace(0, 40, 100001)
        ref = Waveform(t, np.exp(-t))
        cand = Waveform(t, np.zeros_like(t))
        assert l2_error(ref, cand) == pytest.approx(1.0, rel=1e-2)

    def test_absolute_mode(self):
        t = np.linspace(0, 40, 10001)
        ref = Waveform(t, np.exp(-t))
        cand = Waveform(t, np.zeros_like(t))
        assert l2_error(ref, cand, relative=False) == pytest.approx(
            np.sqrt(0.5), rel=1e-2
        )

    def test_disjoint_spans_rejected(self):
        a = Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        b = Waveform(np.array([2.0, 3.0]), np.array([0.0, 1.0]))
        with pytest.raises(AnalysisError):
            l2_error(a, b)


class TestSuperpose:
    def test_delayed_copies(self):
        t = np.linspace(0, 10, 1001)
        base = Waveform(t, np.ones_like(t))
        total = superpose([base, base.shifted(5.0)], t)
        assert total(2.0) == pytest.approx(1.0)
        assert total(7.0) == pytest.approx(2.0)
