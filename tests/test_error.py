"""Tests for the Sec. 3.4 error estimators (exact L2 and Cauchy bound)."""

import numpy as np
import pytest

from repro.core.error import (
    cauchy_bound_distance,
    cauchy_relative_error,
    exact_l2_distance,
    relative_error,
    transient_energy,
)
from repro.core.model import PoleResidueModel


def model(pole_residues, **kwargs):
    terms = tuple((complex(p), 1, complex(k)) for p, k in pole_residues)
    return PoleResidueModel(terms, **kwargs)


def numeric_l2(model_a, model_b, t_stop, n=400001):
    t = np.linspace(0, t_stop, n)
    diff = model_a.transient_at(t) - model_b.transient_at(t)
    return np.sqrt(np.trapezoid(diff * diff, t))


class TestTransientEnergy:
    def test_single_exponential(self):
        # ∫ (k e^{pt})² = k²/(−2p).
        m = model([(-2.0, 3.0)])
        assert transient_energy(m) == pytest.approx(9.0 / 4.0)

    def test_unstable_is_infinite(self):
        assert transient_energy(model([(1.0, 1.0)])) == float("inf")

    def test_complex_pair_energy_is_real(self):
        m = model([(-1 + 5j, 1 - 1j), (-1 - 5j, 1 + 1j)])
        t = np.linspace(0, 40, 400001)
        numeric = np.trapezoid(m.transient_at(t) ** 2, t)
        assert transient_energy(m) == pytest.approx(numeric, rel=1e-6)

    def test_repeated_pole_energy(self):
        # ∫ (t e^{-t})² dt = 2!/(2³) = 0.25.
        m = PoleResidueModel(((complex(-1.0), 2, complex(1.0)),))
        assert transient_energy(m) == pytest.approx(0.25)


class TestExactDistance:
    def test_matches_numeric_integration(self):
        a = model([(-1.0, 2.0), (-3.0, -1.0)])
        b = model([(-1.1, 2.1)])
        assert exact_l2_distance(a, b) == pytest.approx(
            numeric_l2(a, b, 60.0), rel=1e-6
        )

    def test_zero_for_identical(self):
        a = model([(-1.0, 2.0)])
        assert exact_l2_distance(a, a) == pytest.approx(0.0, abs=1e-12)

    def test_infinite_for_unstable(self):
        a = model([(-1.0, 2.0)])
        b = model([(1.0, 2.0)])
        assert exact_l2_distance(a, b) == float("inf")

    def test_complex_pairs(self):
        a = model([(-1 + 5j, 1 - 1j), (-1 - 5j, 1 + 1j)])
        b = model([(-1.2 + 4.8j, 0.9 - 1.1j), (-1.2 - 4.8j, 0.9 + 1.1j)])
        assert exact_l2_distance(a, b) == pytest.approx(
            numeric_l2(a, b, 50.0), rel=1e-6
        )


class TestRelativeError:
    def test_normalisation(self):
        reference = model([(-1.0, 2.0)])
        candidate = model([(-1.0, 0.0)])  # zero transient
        assert relative_error(reference, candidate) == pytest.approx(1.0)

    def test_small_for_close_models(self):
        reference = model([(-1.0, 2.0), (-30.0, 0.01)])
        candidate = model([(-1.0, 2.0)])
        assert relative_error(reference, candidate) < 0.01

    def test_zero_transient_reference(self):
        reference = model([])
        candidate = model([])
        assert relative_error(reference, candidate) == 0.0


class TestCauchyBound:
    def test_is_upper_bound_of_exact(self):
        reference = model([(-1.0, 2.0), (-8.0, 0.5)])
        candidate = model([(-1.05, 2.1)])
        exact = exact_l2_distance(reference, candidate)
        bound = cauchy_bound_distance(reference, candidate)
        assert bound >= exact * 0.999

    def test_exact_when_terms_align(self):
        # The paper: the bound is exact when paired terms match exactly.
        reference = model([(-1.0, 2.0), (-8.0, 0.5)])
        candidate = model([(-1.0, 2.0), (-8.0, 0.5)])
        assert cauchy_bound_distance(reference, candidate) == pytest.approx(0.0, abs=1e-12)

    def test_complex_pair_grouping(self):
        reference = model([(-1 + 5j, 1 - 1j), (-1 - 5j, 1 + 1j), (-4.0, 0.3)])
        candidate = model([(-1.1 + 5.1j, 1 - 1j), (-1.1 - 5.1j, 1 + 1j)])
        bound = cauchy_bound_distance(reference, candidate)
        assert np.isfinite(bound) and bound > 0

    def test_relative_form(self):
        reference = model([(-1.0, 2.0), (-8.0, 0.5)])
        candidate = model([(-1.05, 2.1)])
        assert cauchy_relative_error(reference, candidate) >= relative_error(
            reference, candidate
        ) * 0.999

    def test_unstable_infinite(self):
        assert cauchy_bound_distance(model([(1.0, 1.0)]), model([(-1.0, 1.0)])) == float("inf")
