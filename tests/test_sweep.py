"""The incremental what-if sweep engine (`repro.sweep`).

The contract under test: one factorization serves thousands of
perturbation points.  Exact-mode points must equal a from-scratch
evaluation **bit for bit** (they share the stamping/solve code path);
rank-1 (Sherman–Morrison) points to roundoff (<= the stated 1e-9
relative bound, observed ~1e-15); first-order points within the plan's
error bound.  Invalid updates must *demote* — never silently return
wrong numbers — and say so in the trace.
"""

import dataclasses

import pytest

from repro.circuit.elements import Capacitor, Resistor
from repro.analysis.sources import Step
from repro.papercircuits.generators import random_rc_tree
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.sweep import (
    MODES,
    SweepEngine,
    SweepPlan,
    SweepPoint,
    sweep,
)
from repro.trace import Tracer, iter_events


STIM = {"Vin": Step(0.0, 1.0)}


def tree(nodes=12, seed=7):
    return random_rc_tree(nodes=nodes, seed=seed)


def rel_err(got, want):
    return abs(got - want) / max(abs(want), 1e-300)


class TestPlanValidation:
    def test_point_needs_exactly_one_of_value_and_scale(self):
        with pytest.raises(AnalysisError, match="exactly one"):
            SweepPoint(element="R1")
        with pytest.raises(AnalysisError, match="exactly one"):
            SweepPoint(element="R1", value=1.0, scale=2.0)
        SweepPoint(element="R1", value=1.0)  # fine
        SweepPoint(element="R1", scale=2.0)  # fine

    def test_plan_rejects_unknown_mode_and_empty_points(self):
        point = SweepPoint(element="R1", scale=1.1)
        with pytest.raises(AnalysisError, match="mode"):
            SweepPlan(node="1", points=(point,), mode="magic")
        with pytest.raises(AnalysisError, match="at least one"):
            SweepPlan(node="1", points=())
        assert "auto" in MODES

    def test_payload_roundtrip(self):
        plan = SweepPlan(
            node="3",
            points=(SweepPoint(element="R1", scale=1.2, label="a"),
                    SweepPoint(element="C2", value=1e-12)),
            mode="rank1",
            first_order_threshold=0.1,
            error_bound=1e-4,
        )
        assert SweepPlan.from_payload(plan.to_payload()) == plan

    def test_unknown_element_and_nonphysical_value_are_refused(self):
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        with pytest.raises(AnalysisError, match="unknown element"):
            engine.evaluate(SweepPlan(
                node="3", points=(SweepPoint(element="R999", scale=1.1),)))
        with pytest.raises(AnalysisError, match="non-physical"):
            engine.evaluate(SweepPlan(
                node="3", points=(SweepPoint(element="R1", value=-1.0),)))


class TestTierAccuracy:
    """Every tier vs the from-scratch `direct_point` reference."""

    def points(self, circuit):
        resistors = [e.name for e in circuit if isinstance(e, Resistor)]
        capacitors = [e.name for e in circuit if isinstance(e, Capacitor)]
        pts = []
        for name in resistors[:4]:
            pts.append(SweepPoint(element=name, scale=1.02))   # small: gradient
            pts.append(SweepPoint(element=name, scale=2.5))    # large: rank-1
        for name in capacitors[:4]:
            pts.append(SweepPoint(element=name, scale=1.03))
            pts.append(SweepPoint(element=name, scale=0.4))
        pts.append(SweepPoint(element="Vin", value=0.9))
        return tuple(pts)

    def test_auto_mix_tracks_direct_within_plan_bound(self):
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        plan = SweepPlan(node="5", points=self.points(circuit))
        result = engine.evaluate(plan)
        assert result.stats["first_order"] > 0
        assert result.stats["rank1"] > 0
        assert result.stats["factorizations"] == 0
        assert result.incremental_points == len(plan.points)
        for point, got in zip(plan.points, result.points):
            want = engine.direct_point(point, "5")
            bound = plan.error_bound if got.mode == "first_order" else 1e-9
            assert rel_err(got.elmore_delay, want.elmore_delay) <= bound, point
            assert rel_err(got.dc, want.dc) <= bound, point

    def test_exact_mode_is_bitwise_equal_to_direct(self):
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        plan = SweepPlan(node="5", points=self.points(circuit), mode="exact")
        result = engine.evaluate(plan)
        assert result.stats["exact"] == len(plan.points)
        assert result.stats["factorizations"] == len(plan.points)
        for point, got in zip(plan.points, result.points):
            want = engine.direct_point(point, "5")
            assert got.dc == want.dc                     # bitwise, not approx
            assert got.m1 == want.m1
            assert got.elmore_delay == want.elmore_delay

    def test_rank1_mode_stays_within_stated_roundoff_bound(self):
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        plan = SweepPlan(node="5", points=self.points(circuit), mode="rank1")
        result = engine.evaluate(plan)
        assert result.stats["rank1"] == len(plan.points)
        assert result.stats["factorizations"] == 0
        for point, got in zip(plan.points, result.points):
            want = engine.direct_point(point, "5")
            assert rel_err(got.elmore_delay, want.elmore_delay) <= 1e-9
            assert rel_err(got.m1, want.m1) <= 1e-9

    def test_capacitor_first_order_is_exact(self):
        # Elmore delay is *linear* in each capacitance, so the gradient
        # tier is not an approximation for C points — estimate 0.0.
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        name = next(e.name for e in circuit if isinstance(e, Capacitor))
        plan = SweepPlan(node="5", mode="first_order",
                         points=(SweepPoint(element=name, scale=3.0),))
        got = engine.evaluate(plan).points[0]
        want = engine.direct_point(plan.points[0], "5")
        assert got.error_estimate == 0.0
        assert rel_err(got.elmore_delay, want.elmore_delay) <= 1e-9

    def test_source_retune_is_exact_in_any_mode(self):
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        for mode in ("auto", "first_order", "rank1"):
            plan = SweepPlan(node="5", mode=mode,
                             points=(SweepPoint(element="Vin", value=0.75),))
            got = engine.evaluate(plan).points[0]
            want = engine.direct_point(plan.points[0], "5")
            assert got.mode == "rank1"
            assert rel_err(got.dc, want.dc) <= 1e-12
            assert rel_err(got.elmore_delay, want.elmore_delay) <= 1e-12

    def test_large_resistor_change_escalates_past_first_order(self):
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        name = next(e.name for e in circuit if isinstance(e, Resistor))
        plan = SweepPlan(node="5",
                         points=(SweepPoint(element=name, scale=2.5),))
        got = engine.evaluate(plan).points[0]
        assert got.mode == "rank1"  # auto policy skipped the gradient tier


class TestFallback:
    def test_degenerate_rank1_denominator_falls_back_to_exact(self):
        # Scaling a tree resistor by 1e10 drives the Sherman–Morrison
        # denominator to ~1e-10 — below the validity floor, yet the
        # perturbed system is still (barely) factorizable.  The point
        # must demote to exact, flag the fallback, and *still* match the
        # from-scratch reference bit for bit.
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        tracer = Tracer("sweep-test")
        traced = SweepEngine(circuit, STIM, tracer=tracer)
        point = SweepPoint(element="R1", scale=1e10)
        plan = SweepPlan(node="5", points=(point,))
        result = traced.evaluate(plan)
        got = result.points[0]
        assert got.mode == "exact"
        assert got.fallback is True
        assert result.stats == {"first_order": 0, "rank1": 0, "exact": 1,
                                "fallbacks": 1, "factorizations": 1}
        want = engine.direct_point(point, "5")
        assert got.dc == want.dc
        assert got.m1 == want.m1
        assert got.elmore_delay == want.elmore_delay
        events = {e["name"]: e["data"]
                  for _, e in iter_events(tracer.to_record())}
        assert events["sweep_fallback"]["to_mode"] == "exact"
        assert "singular" in events["sweep_fallback"]["reason"]
        assert events["sweep_point"]["fallback"] is True

    def test_first_order_estimate_above_bound_demotes_to_rank1(self):
        circuit = tree()
        tracer = Tracer("sweep-test")
        engine = SweepEngine(circuit, STIM, tracer=tracer)
        # A 4 % R change is small enough for the gradient tier's auto
        # window, but a tiny error bound forces its estimate over.
        plan = SweepPlan(node="5", error_bound=1e-12,
                         points=(SweepPoint(element="R1", scale=1.04),))
        result = engine.evaluate(plan)
        got = result.points[0]
        assert got.mode == "rank1"
        assert got.fallback is True
        fallbacks = [e["data"] for _, e in iter_events(tracer.to_record())
                     if e["name"] == "sweep_fallback"]
        assert fallbacks and fallbacks[0]["to_mode"] == "rank1"
        assert "exceeds" in fallbacks[0]["reason"]


class TestTrace:
    def test_every_point_emits_a_sweep_point_event(self):
        circuit = tree()
        tracer = Tracer("sweep-test")
        engine = SweepEngine(circuit, STIM, tracer=tracer)
        plan = SweepPlan(node="5", points=(
            SweepPoint(element="R1", scale=1.01, label="r-small"),
            SweepPoint(element="C2", scale=2.0, label="c-big"),
        ))
        engine.evaluate(plan)
        record = tracer.to_record()
        spans = [span for span, _ in iter_events(record)]
        assert any(s == "sweep" for s in spans)
        points = [e["data"] for _, e in iter_events(record)
                  if e["name"] == "sweep_point"]
        assert [p["label"] for p in points] == ["r-small", "c-big"]
        assert all(p["mode"] in MODES for p in points)


class TestEngineScope:
    def test_rejects_inductors(self):
        circuit = tree()
        from repro.circuit.elements import Inductor

        circuit.add(Inductor("L1", "1", "2", 1e-9))
        with pytest.raises(AnalysisError, match="R/C/V/I"):
            SweepEngine(circuit, STIM)

    def test_frozen_base_circuit_is_fine(self):
        # Memoized (frozen) circuits are a legitimate base: perturbed
        # variants go through copy(), which is always mutable.
        circuit = tree().freeze()
        engine = SweepEngine(circuit, STIM)
        plan = SweepPlan(node="5",
                         points=(SweepPoint(element="R1", scale=3.0),))
        result = engine.evaluate(plan)
        assert result.points[0].mode == "rank1"
        # Exact tier re-stamps via copy() — must not trip the freeze guard.
        plan = dataclasses.replace(plan, mode="exact")
        assert engine.evaluate(plan).points[0].mode == "exact"

    def test_one_shot_wrapper(self):
        circuit = tree()
        plan = SweepPlan(node="5",
                         points=(SweepPoint(element="R1", scale=1.01),))
        result = sweep(circuit, STIM, plan)
        assert result.node == "5"
        assert len(result.points) == 1
        payload = result.to_payload()
        assert payload["stats"]["fallbacks"] == 0
        assert payload["base"]["mode"] == "base"

    def test_factorization_stats_reset_per_evaluate(self):
        circuit = tree()
        engine = SweepEngine(circuit, STIM)
        plan = SweepPlan(node="5", mode="exact",
                         points=(SweepPoint(element="R1", scale=1.5),))
        assert engine.evaluate(plan).stats["factorizations"] == 1
        assert engine.evaluate(plan).stats["factorizations"] == 1  # not 2
