"""Run-report tests: document building, schema validation, CLI output.

The acceptance bar: ``python -m repro report`` over a 10+ job batch must
emit a schema-valid JSON document and a Markdown report containing the
per-phase timings, per-response pole/residue tables, and every traced
order-escalation event with its error estimate.
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import AweJob, BatchEngine, Step
from repro.cli import main
from repro.papercircuits import fig22_floating_cap
from repro.report import (
    REPORT_SCHEMA,
    build_report,
    render_markdown,
    response_record,
    validate_report,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _ladder_deck(index: int, sections: int) -> str:
    """An RC ladder deck with a distinct title and an ``out`` node."""
    # The title must not parse as a card (an 'R…' first line with a
    # numeric tail would become a resistor), so start with a safe word.
    lines = [f"acceptance ladder {index}",
             "Vin in 0 PWL(0 0 0.2n 3.3)"]
    previous = "in"
    for s in range(1, sections):
        lines.append(f"R{s} {previous} n{s} {200 + 37 * index}")
        lines.append(f"C{s} n{s} 0 {120 + 11 * s}f")
        previous = f"n{s}"
    lines.append(f"Rout {previous} out {150 + 13 * index}")
    lines.append("Cout out 0 300f")
    lines.append(".end")
    return "\n".join(lines) + "\n"


@pytest.fixture()
def deck_files(tmp_path):
    paths = []
    for index in range(10):
        path = tmp_path / f"ladder{index}.sp"
        path.write_text(_ladder_deck(index, sections=3 + index % 4),
                        encoding="utf-8")
        paths.append(str(path))
    return paths


class TestCliAcceptance:
    """The ISSUE acceptance criterion, end to end over 10 jobs."""

    def test_ten_job_batch_json_and_markdown(self, deck_files, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        md_path = tmp_path / "run.md"
        code = main(["report", *deck_files, "--node", "out",
                     "--target", "0.001",
                     "--json", str(json_path), "--markdown", str(md_path)])
        assert code == 0

        document = json.loads(json_path.read_text(encoding="utf-8"))
        validate_report(document)  # schema check on what the CLI wrote
        assert document["schema"] == REPORT_SCHEMA
        assert document["kind"] == "batch"
        assert document["totals"]["jobs"] == 10
        assert document["totals"]["jobs_failed"] == 0

        markdown = md_path.read_text(encoding="utf-8")

        # Per-phase timings, for the batch and per job.
        assert "## Solver phase breakdown" in markdown
        for phase in ("parse", "mna_assembly", "lu", "moment_recursion",
                      "pade"):
            assert f"| {phase} |" in markdown, phase

        # Per-response pole/residue tables.
        assert markdown.count("Poles and residues:") >= 10
        assert "| model | pole (1/s) | power | residue |" in markdown

        # Every traced order-escalation event appears with its estimate.
        escalations = [event for job in document["jobs"]
                       for event in job["events"]
                       if event["name"] == "order_escalation"]
        assert escalations, "a 0.1% target must force escalations"
        assert (document["totals"]["order_escalations_traced"]
                == len(escalations))
        for event in escalations:
            assert "error_estimate" in event["data"]
        assert markdown.count("| escalated") + markdown.count("escalated |") \
            >= len(escalations)

    def test_module_entry_point_streams_json(self, deck_files):
        process = subprocess.run(
            [sys.executable, "-m", "repro", "report", *deck_files[:3],
             "--node", "out", "--json", "-"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
        )
        assert process.returncode == 0, process.stderr
        document = json.loads(process.stdout)  # stdout is pure JSON
        validate_report(document)
        assert document["totals"]["jobs"] == 3

    def test_workers_fan_out(self, deck_files, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        code = main(["report", *deck_files, "--node", "out",
                     "--workers", "2", "--json", str(json_path)])
        assert code == 0
        document = json.loads(json_path.read_text(encoding="utf-8"))
        validate_report(document)
        assert all(job["traced"] for job in document["jobs"])

    def test_failed_job_reported_not_fatal(self, deck_files, tmp_path, capsys):
        # Parses fine but has no 'out' node, so the *job* fails while the
        # batch (and the report) survives.
        bad = tmp_path / "bad.sp"
        bad.write_text(
            "a deck without the requested node\n"
            "Vin x 0 DC 1\nR1 x y 50\nC1 y 0 1p\n.end\n",
            encoding="utf-8")
        json_path = tmp_path / "run.json"
        code = main(["report", deck_files[0], str(bad), "--node", "out",
                     "--json", str(json_path)])
        assert code == 1
        assert "error" in capsys.readouterr().err
        document = json.loads(json_path.read_text(encoding="utf-8"))
        validate_report(document)
        assert document["totals"]["jobs_failed"] == 1
        failed = [job for job in document["jobs"] if not job["ok"]]
        assert failed and failed[0]["error_type"]

    def test_multi_deck_text_mode(self, deck_files, capsys):
        assert main(["report", *deck_files[:2], "--node", "out"]) == 0
        out = capsys.readouterr().out
        assert out.count("AWE timing report:") == 2
        assert "acceptance ladder 0" in out
        assert "acceptance ladder 1" in out


class TestBuildReport:
    def _results(self, n=2, trace=True, **engine_kwargs):
        jobs = [
            AweJob(fig22_floating_cap(), ("7",),
                   stimuli={"Vin": Step(0.0, 5.0)},
                   error_target=0.01, label=f"fig22-{i}")
            for i in range(n)
        ]
        engine = BatchEngine(**engine_kwargs)
        return engine.run(jobs, trace=trace), engine

    def test_kind_analysis_for_single_job(self):
        results, engine = self._results(n=1)
        document = validate_report(build_report(results,
                                                engine_stats=engine.stats()))
        assert document["kind"] == "analysis"
        assert document["totals"]["batching_factor"] is not None

    def test_untraced_results_still_valid(self):
        results, engine = self._results(n=2, trace=False)
        document = validate_report(build_report(results))
        assert all(job["traced"] is False for job in document["jobs"])
        assert all(job["phase_seconds"] == {} for job in document["jobs"])
        assert document["totals"]["batching_factor"] is None

    def test_include_traces_embeds_span_tree(self):
        results, engine = self._results(n=1)
        document = build_report(results, include_traces=True)
        trace = document["jobs"][0]["trace"]
        assert trace["name"] == "fig22-0"
        json.dumps(document)

    def test_title_and_threshold(self):
        results, engine = self._results(n=1)
        document = validate_report(build_report(
            results, engine_stats=engine.stats(), threshold=2.5,
            title="titled run"))
        assert document["title"] == "titled run"
        response = document["jobs"][0]["responses"][0]
        assert response["delay_threshold_s"] is not None

    def test_impossible_threshold_degrades_to_null(self):
        results, _ = self._results(n=1)
        document = validate_report(build_report(results, threshold=1e6))
        response = document["jobs"][0]["responses"][0]
        assert response["delay_threshold_s"] is None

    def test_response_record_terms_match_poles(self):
        results, _ = self._results(n=1)
        node, response = next(iter(results[0].responses.items()))
        record = response_record(node, response)
        assert record["node"] == node
        assert record["order"] == response.order
        assert len(record["poles"]) == response.order
        assert record["terms"], "pole/residue table must not be empty"
        for term in record["terms"]:
            assert set(term) == {"model", "t0_s", "pole", "power", "residue"}
        assert record["components"][0]["label"] == "main"


class TestValidateReport:
    def _document(self):
        results, engine = TestBuildReport()._results(n=1)
        return build_report(results, engine_stats=engine.stats())

    def test_round_trips_through_json(self):
        document = self._document()
        validate_report(json.loads(json.dumps(document)))

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda d: d.update(schema="nope/9"), "$.schema"),
        (lambda d: d.update(kind="sideways"), "$.kind"),
        (lambda d: d.update(jobs=[]), "$.jobs"),
        (lambda d: d["jobs"][0].update(ok="yes"), ".ok"),
        (lambda d: d["jobs"][0].update(responses=[]), ".responses"),
        (lambda d: d["jobs"][0]["phase_seconds"].update(lu=-1.0), "phase_seconds"),
        (lambda d: d["totals"].update(jobs=99), "$.totals.jobs"),
        (lambda d: d["totals"].update(batching_factor="fast"), "batching_factor"),
        (lambda d: d["jobs"][0]["responses"][0].pop("node"), ".node"),
        (lambda d: d["jobs"][0]["events"].append(
            {"name": "order_escalation", "span": "x", "t_s": 0.0,
             "data": {"order": 1}}), "order_escalation"),
    ])
    def test_rejects_structural_damage(self, mutate, fragment):
        document = copy.deepcopy(self._document())
        mutate(document)
        with pytest.raises(ValueError) as excinfo:
            validate_report(document)
        assert fragment in str(excinfo.value)

    def test_reports_all_problems_at_once(self):
        document = copy.deepcopy(self._document())
        document["schema"] = "nope"
        document["kind"] = "sideways"
        with pytest.raises(ValueError) as excinfo:
            validate_report(document)
        message = str(excinfo.value)
        assert "$.schema" in message and "$.kind" in message

    def test_not_a_dict(self):
        with pytest.raises(ValueError):
            validate_report([1, 2, 3])


class TestRenderMarkdown:
    def test_failed_job_rendering(self):
        jobs = [AweJob(fig22_floating_cap(), ("missing",),
                       stimuli={"Vin": Step(0.0, 5.0)}, label="doomed")]
        results = BatchEngine().run(jobs, trace=True)
        document = validate_report(build_report(results))
        markdown = render_markdown(document)
        assert "**FAILED**" in markdown
        assert "`CircuitError`" in markdown

    def test_escalation_table_includes_estimates(self):
        jobs = [AweJob(fig22_floating_cap(), ("12",),
                       stimuli={"Vin": Step(0.0, 5.0)},
                       error_target=0.001, label="deep")]
        results = BatchEngine().run(jobs, trace=True)
        document = validate_report(build_report(results))
        markdown = render_markdown(document)
        assert "### Order trajectory" in markdown
        assert "| escalated" in markdown or "escalated |" in markdown
        assert "%" in markdown
