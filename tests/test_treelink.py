"""Tests for tree/link analysis (paper Sec. IV) against the MNA engine."""

import numpy as np
import pytest

from repro import MnaSystem
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.core.moments import homogeneous_moments
from repro.errors import TopologyError
from repro.papercircuits import (
    fig4_elmore_delays,
    fig4_rc_tree,
    fig9_grounded_resistor,
    random_rc_tree,
    rc_mesh,
)
from repro.rctree import (
    TreeLinkAnalysis,
    elmore_delays,
    treelink_elmore_delays,
    treelink_moments,
    treelink_steady_state,
)


def mna_moment_reference(circuit, v_supply, count):
    """Homogeneous moments via the MNA engine, keyed by capacitor name."""
    system = MnaSystem(circuit)
    sources = {s.name: v_supply for s in circuit.voltage_sources}
    zeros = {name: 0.0 for name in sources}
    state = resolve_initial_storage_state(system, zeros)
    x0 = initial_operating_point(circuit, system, state, sources)
    x_final = dc_operating_point(system, sources)
    moments = homogeneous_moments(system, x0 - x_final, count)
    result = {}
    for cap in circuit.capacitors:
        node = cap.positive if cap.negative == "0" else cap.negative
        result[cap.name] = moments.sequence_for(system.index.node(node))
    return result


class TestSteadyState:
    def test_rc_tree_explicit(self):
        v_ss = treelink_steady_state(fig4_rc_tree(), {"Vin": 5.0})
        assert all(v == pytest.approx(5.0) for v in v_ss.values())

    def test_grounded_resistor_inexplicit(self):
        v_ss = treelink_steady_state(fig9_grounded_resistor(), {"Vin": 5.0})
        assert v_ss["C4"] == pytest.approx(5.0 * 4.0 / 7.0)

    def test_mesh_steady_state_matches_mna(self):
        circuit = rc_mesh(2, 3)
        v_tl = treelink_steady_state(circuit, {"Vin": 5.0})
        system = MnaSystem(circuit)
        x = dc_operating_point(system, {"Vin": 5.0})
        for cap in circuit.capacitors:
            node = cap.positive if cap.negative == "0" else cap.negative
            assert v_tl[cap.name] == pytest.approx(x[system.index.node(node)])


class TestMoments:
    @pytest.mark.parametrize("circuit_factory", [
        fig4_rc_tree,
        fig9_grounded_resistor,
        lambda: random_rc_tree(9, seed=13),
        lambda: rc_mesh(2, 2),
    ], ids=["fig4", "fig9", "random-tree", "mesh"])
    def test_moments_match_mna(self, circuit_factory):
        circuit = circuit_factory()
        reference = mna_moment_reference(circuit, 5.0, 4)
        treelink = treelink_moments(circuit, {"Vin": 5.0}, 4)
        for name, expected in reference.items():
            np.testing.assert_allclose(treelink[name], expected, rtol=1e-9,
                                       err_msg=name)

    def test_elmore_via_treelink_equals_tree_walk(self):
        # Paper eq. 50 (tree walk) vs eq. 56 (tree/link) on Fig. 4.
        via_treelink = treelink_elmore_delays(fig4_rc_tree(), 5.0)
        via_walk = elmore_delays(fig4_rc_tree())
        hand = fig4_elmore_delays()
        for node, expected in hand.items():
            assert via_treelink[f"C{node}"] == pytest.approx(expected)
            assert via_walk[node] == pytest.approx(expected)

    def test_elmore_supply_invariance(self):
        d1 = treelink_elmore_delays(fig4_rc_tree(), 1.0)
        d5 = treelink_elmore_delays(fig4_rc_tree(), 5.0)
        for name in d1:
            assert d1[name] == pytest.approx(d5[name])


class TestPartitionStructure:
    def test_rc_tree_has_no_resistive_links(self):
        analysis = TreeLinkAnalysis(fig4_rc_tree())
        assert analysis.resistive_links == []

    def test_grounded_resistor_forces_one_link(self):
        analysis = TreeLinkAnalysis(fig9_grounded_resistor())
        assert len(analysis.resistive_links) == 1

    def test_mesh_link_count(self):
        # A 2x2 mesh: 4 mesh resistors + 1 driver; spanning tree uses 4
        # (source counts as one tree branch) → 1 resistive link per loop.
        analysis = TreeLinkAnalysis(rc_mesh(2, 2))
        assert len(analysis.resistive_links) == 1

    def test_unsupported_elements_rejected(self, series_rlc):
        with pytest.raises(TopologyError, match="R/C/V/I"):
            TreeLinkAnalysis(series_rlc)

    def test_capacitor_only_node_rejected(self, floating_node_circuit):
        with pytest.raises(TopologyError, match="spanning tree"):
            TreeLinkAnalysis(floating_node_circuit)
