"""Tests for the netlist writer, including parse/write round trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Circuit, parse_netlist
from repro.analysis.sources import DC, PWL, Pulse, Ramp, Step
from repro.circuit.writer import write_netlist, write_netlist_file
from repro.errors import CircuitError
from repro.papercircuits import fig25_rlc_ladder, fig4_rc_tree, random_rc_tree
from tests.strategies import roundtrip


class TestRoundTrip:
    def test_fig4_elements_exact(self):
        circuit = fig4_rc_tree()
        deck = roundtrip(circuit)
        assert len(deck.circuit) == len(circuit)
        for element in circuit:
            clone = deck.circuit[element.name]
            assert clone.nodes == element.nodes
            for attr in ("resistance", "capacitance", "dc"):
                if hasattr(element, attr):
                    assert getattr(clone, attr) == getattr(element, attr)

    def test_rlc_with_title(self):
        circuit = fig25_rlc_ladder()
        deck = roundtrip(circuit)
        assert deck.title == circuit.title
        assert len(deck.circuit.inductors) == 3

    def test_initial_conditions_preserved(self):
        circuit = fig4_rc_tree()
        circuit.set_initial_voltage("C2", 2.5)
        deck = roundtrip(circuit)
        assert deck.circuit["C2"].initial_voltage == 2.5

    def test_mutual_inductance_preserved(self):
        ckt = Circuit("coupled")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_inductor("L1", "in", "a", 10e-9)
        ckt.add_capacitor("C1", "a", "0", 1e-12)
        ckt.add_inductor("L2", "b", "0", 5e-9)
        ckt.add_resistor("R2", "b", "0", 50.0)
        ckt.add_mutual_inductance("K12", "L1", "L2", 0.42)
        deck = roundtrip(ckt)
        assert deck.circuit.mutual_inductances[0].coupling == 0.42

    def test_controlled_sources(self):
        ckt = Circuit("ctl")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("R1", "in", "a", 1e3)
        ckt.add_capacitor("C1", "a", "0", 1e-12)
        ckt.add_vcvs("E1", "b", "0", "a", "0", 2.0)
        ckt.add_resistor("R2", "b", "0", 1e3)
        ckt.add_cccs("F1", "c", "0", "Vin", -1.0)
        ckt.add_resistor("R3", "c", "0", 1e3)
        deck = roundtrip(ckt)
        assert deck.circuit["E1"].gain == 2.0
        assert deck.circuit["F1"].control_element == "Vin"

    @pytest.mark.parametrize("stimulus", [
        DC(3.3),
        Step(0.0, 5.0, delay=1e-9),
        Ramp(0.0, 5.0, rise_time=2e-9),
        Pulse(0.0, 5.0, delay=1e-9, rise=0.1e-9, width=3e-9, fall=0.2e-9),
        PWL([(0, 0), (1e-9, 2.5), (2e-9, 5.0)]),
    ], ids=lambda s: type(s).__name__)
    def test_stimuli_waveforms_preserved(self, stimulus):
        circuit = fig4_rc_tree()
        deck = roundtrip(circuit, {"Vin": stimulus})
        restored = deck.stimuli["Vin"]
        t = np.linspace(0, 6e-9, 200)
        np.testing.assert_allclose(restored.value(t), stimulus.value(t),
                                   rtol=1e-12, atol=1e-12)

    def test_file_output(self, tmp_path):
        path = tmp_path / "out.sp"
        write_netlist_file(path, fig4_rc_tree())
        assert parse_netlist(path.read_text()).circuit["R1"].resistance == 1e3


class TestValidation:
    def test_wrong_first_letter_rejected(self):
        ckt = Circuit()
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("wire1", "in", "a", 1e3)
        ckt.add_capacitor("C1", "a", "0", 1e-12)
        with pytest.raises(CircuitError, match="wire1"):
            write_netlist(ckt)

    def test_title_override(self):
        text = write_netlist(fig4_rc_tree(), title="custom")
        assert text.splitlines()[0] == "custom"

    def test_ends_with_end(self):
        assert write_netlist(fig4_rc_tree()).rstrip().endswith(".end")


class TestCanonicalOrdering:
    def test_elements_sorted_by_natural_key(self):
        ckt = Circuit("ordering")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_resistor("R10", "a", "b", 1e3)
        ckt.add_resistor("R2", "in", "a", 1e3)
        ckt.add_capacitor("c1", "a", "0", 1e-12)
        ckt.add_capacitor("C10", "b", "0", 1e-12)
        names = [line.split()[0] for line in
                 write_netlist(ckt, canonical=True).splitlines()[1:-1]]
        assert names == ["c1", "C10", "R2", "R10", "Vin"]

    def test_construction_order_invisible_in_canonical_mode(self):
        one = Circuit("one")
        one.add_voltage_source("Vin", "in", "0")
        one.add_resistor("R1", "in", "a", 1e3)
        one.add_capacitor("C1", "a", "0", 1e-12)
        other = Circuit("other")
        other.add_capacitor("C1", "a", "0", 1e-12)
        other.add_resistor("R1", "in", "a", 1e3)
        other.add_voltage_source("Vin", "in", "0")
        assert (write_netlist(one, title="t", canonical=True)
                == write_netlist(other, title="t", canonical=True))
        # Default mode still preserves construction order.
        assert (write_netlist(one, title="t")
                != write_netlist(other, title="t"))

    def test_canonical_deck_roundtrips(self):
        circuit = fig4_rc_tree()
        deck = parse_netlist(write_netlist(circuit, canonical=True))
        assert len(deck.circuit) == len(circuit)
        for element in circuit:
            assert deck.circuit[element.name].nodes == element.nodes

    def test_canonical_mutual_inductances_sorted_and_valid(self):
        ckt = Circuit("coupled")
        ckt.add_voltage_source("Vin", "in", "0")
        ckt.add_inductor("L1", "in", "a", 10e-9)
        ckt.add_capacitor("C1", "a", "0", 1e-12)
        ckt.add_inductor("L2", "b", "0", 5e-9)
        ckt.add_resistor("R2", "b", "0", 50.0)
        ckt.add_mutual_inductance("K12", "L1", "L2", 0.42)
        ckt.add_mutual_inductance("K2", "L2", "L1", 0.1)
        text = write_netlist(ckt, canonical=True)
        names = [line.split()[0] for line in text.splitlines()[1:-1]]
        assert names.index("K2") < names.index("K12")  # natural: K2 < K12
        assert parse_netlist(text).circuit.mutual_inductances[0].coupling in (0.42, 0.1)

    def test_canonical_key_is_stable_hex_digest(self):
        key = fig4_rc_tree().canonical_key()
        assert len(key) == 64
        assert key == fig4_rc_tree().canonical_key()


class TestPropertyRoundTrip:
    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_random_trees_roundtrip_exactly(self, nodes, seed):
        circuit = random_rc_tree(nodes, seed=seed)
        deck = roundtrip(circuit)
        assert len(deck.circuit) == len(circuit)
        for element in circuit:
            clone = deck.circuit[element.name]
            if hasattr(element, "resistance"):
                assert clone.resistance == element.resistance
            if hasattr(element, "capacitance"):
                assert clone.capacitance == element.capacitance
