"""Tests for the Penfield–Rubinstein single-pole baseline and its bounds."""

import numpy as np
import pytest

from repro import Step, simulate
from repro.errors import AnalysisError
from repro.papercircuits import fig4_rc_tree, random_rc_tree
from repro.rctree import (
    crossing_time_upper_bound,
    elmore_delays,
    penfield_rubinstein_model,
)


class TestModel:
    def test_waveform_is_eq2(self):
        model = penfield_rubinstein_model(fig4_rc_tree(), "4", 5.0)
        t = np.linspace(0, 3e-3, 64)
        np.testing.assert_allclose(
            model.evaluate(t), 5.0 * (1 - np.exp(-t / model.elmore_delay))
        )

    def test_elmore_delay_carried(self):
        model = penfield_rubinstein_model(fig4_rc_tree(), "4", 5.0)
        assert model.elmore_delay == pytest.approx(0.7e-3)

    def test_crossing_time(self):
        model = penfield_rubinstein_model(fig4_rc_tree(), "4", 5.0)
        assert model.crossing_time(2.5) == pytest.approx(0.7e-3 * np.log(2))

    def test_crossing_outside_swing(self):
        model = penfield_rubinstein_model(fig4_rc_tree(), "4", 5.0)
        with pytest.raises(AnalysisError):
            model.crossing_time(6.0)

    def test_to_waveform(self):
        model = penfield_rubinstein_model(fig4_rc_tree(), "4", 5.0)
        w = model.to_waveform(np.linspace(0, 5e-3, 32))
        assert w.values[-1] == pytest.approx(5.0, rel=1e-2)

    def test_non_tree_node(self):
        with pytest.raises(AnalysisError):
            penfield_rubinstein_model(fig4_rc_tree(), "nope", 5.0)


class TestBounds:
    @pytest.mark.parametrize("seed", [2, 11, 23])
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.9])
    def test_bounds_contain_true_crossing(self, seed, threshold):
        circuit = random_rc_tree(8, seed=seed)
        leaves = [n for n in circuit.nodes if n != "in"]
        node = leaves[-1]
        model = penfield_rubinstein_model(circuit, node, 5.0)
        lower, upper = model.crossing_bounds(threshold * 5.0)
        result = simulate(circuit, {"Vin": Step(0, 5)}, 12 * model.t_max)
        true_crossing = result.voltage(node).threshold_delay(threshold * 5.0)
        assert lower <= true_crossing * (1 + 1e-6)
        assert true_crossing <= upper * (1 + 1e-6)

    def test_bounds_ordered(self):
        model = penfield_rubinstein_model(fig4_rc_tree(), "4", 5.0)
        lower, upper = model.crossing_bounds(2.5)
        assert lower <= model.crossing_time(2.5) <= upper

    def test_upper_bound_helper(self):
        assert crossing_time_upper_bound(1e-9, 0.5) == pytest.approx(2e-9)
        with pytest.raises(AnalysisError):
            crossing_time_upper_bound(1e-9, 1.5)

    def test_t_max_dominates_elmore(self):
        # T_max sums full path resistance per cap, so T_max >= T_D always.
        circuit = random_rc_tree(10, seed=5)
        delays = elmore_delays(circuit)
        for node in circuit.nodes:
            if node == "in":
                continue
            model = penfield_rubinstein_model(circuit, node, 5.0)
            assert model.t_max >= delays[node] * (1 - 1e-12)
