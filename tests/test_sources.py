"""Tests for stimulus waveforms and their ramp-event decompositions."""

import numpy as np
import pytest

from repro.analysis.sources import (
    DC,
    PWL,
    Pulse,
    Ramp,
    RampEvent,
    Step,
    merge_event_times,
)
from repro.errors import AnalysisError


def reconstruct(stimulus, t):
    """Rebuild the waveform from its event decomposition — must match
    value() exactly; this is the invariant the AWE driver relies on."""
    t = np.asarray(t, dtype=float)
    total = np.full_like(t, stimulus.initial_value)
    for event in stimulus.events():
        active = t >= event.time
        total = total + np.where(active, event.step, 0.0)
        total = total + np.where(active, event.slope_delta * (t - event.time), 0.0)
    return total


STIMULI = [
    DC(3.0),
    Step(0.0, 5.0),
    Step(1.0, -2.0, delay=2e-9),
    Ramp(0.0, 5.0, rise_time=1e-9),
    Ramp(5.0, 0.0, rise_time=2e-9, delay=1e-9),
    Pulse(0.0, 5.0, delay=1e-9, rise=0.5e-9, width=3e-9, fall=0.5e-9),
    Pulse(0.0, 1.0, delay=0.0, rise=0.0, width=1e-9, fall=0.0),
    PWL([(0, 0), (1e-9, 5), (2e-9, 5), (3e-9, 1)]),
    PWL([(0, 2)]),
]


@pytest.mark.parametrize("stimulus", STIMULI, ids=lambda s: type(s).__name__ + repr(s)[:25])
def test_event_decomposition_reconstructs_waveform(stimulus):
    t = np.linspace(0.0, 8e-9, 1601)
    np.testing.assert_allclose(reconstruct(stimulus, t), stimulus.value(t),
                               rtol=1e-12, atol=1e-12)


class TestStep:
    def test_values(self):
        step = Step(0.0, 5.0, delay=1e-9)
        assert step.value(0.5e-9) == 0.0
        assert step.value(1e-9) == 5.0

    def test_single_event(self):
        assert Step(0.0, 5.0).events() == [RampEvent(0.0, step=5.0)]

    def test_final_value(self):
        assert Step(0.0, 5.0).final_value == 5.0


class TestRamp:
    def test_values_midpoint(self):
        ramp = Ramp(0.0, 4.0, rise_time=2e-9)
        assert ramp.value(1e-9) == pytest.approx(2.0)

    def test_two_slope_events_cancel(self):
        events = Ramp(0.0, 5.0, rise_time=1e-9).events()
        assert len(events) == 2
        assert events[0].slope_delta == pytest.approx(-events[1].slope_delta)

    def test_rejects_zero_rise(self):
        with pytest.raises(AnalysisError):
            Ramp(0.0, 5.0, rise_time=0.0)

    def test_final_value(self):
        assert Ramp(1.0, 4.0, rise_time=1e-9).final_value == pytest.approx(4.0)


class TestPulse:
    def test_returns_to_baseline(self):
        pulse = Pulse(0.0, 5.0, delay=0.0, rise=1e-10, width=1e-9, fall=1e-10)
        assert pulse.value(np.asarray(5e-9)) == pytest.approx(0.0)
        assert pulse.final_value == pytest.approx(0.0)

    def test_plateau(self):
        pulse = Pulse(0.0, 5.0, delay=0.0, rise=1e-10, width=1e-9, fall=1e-10)
        assert pulse.value(np.asarray(5e-10)) == pytest.approx(5.0)

    def test_rejects_negative_fields(self):
        with pytest.raises(AnalysisError):
            Pulse(0.0, 5.0, rise=-1e-9)


class TestPWL:
    def test_holds_outside_range(self):
        pwl = PWL([(1e-9, 1.0), (2e-9, 3.0)])
        assert pwl.value(np.asarray(0.0)) == pytest.approx(1.0)
        assert pwl.value(np.asarray(9e-9)) == pytest.approx(3.0)

    def test_unsorted_rejected(self):
        with pytest.raises(AnalysisError):
            PWL([(1e-9, 0.0), (0.5e-9, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            PWL([])

    def test_coincident_points_make_step(self):
        pwl = PWL([(0, 0), (1e-9, 0), (1e-9, 5), (2e-9, 5)])
        events = pwl.events()
        steps = [e for e in events if e.step != 0]
        assert len(steps) == 1 and steps[0].step == 5.0

    def test_forever_ramp_has_no_final_value(self):
        class ForeverRamp(Ramp):
            def events(self):
                return [RampEvent(0.0, slope_delta=1.0)]

        with pytest.raises(AnalysisError):
            ForeverRamp(0, 1, 1e-9).final_value


def test_merge_event_times():
    stimuli = {
        "a": Step(0, 1, delay=1e-9),
        "b": Ramp(0, 1, rise_time=1e-9, delay=1e-9),
    }
    assert merge_event_times(stimuli) == [1e-9, 2e-9]


def test_dc_has_no_events():
    assert DC(5.0).events() == []
