"""Unit and integration tests for the ``repro.trace`` layer."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro import AweAnalyzer, AweJob, BatchEngine, Step
from repro.instrumentation import SolverStats
from repro.papercircuits import fig4_rc_tree, fig22_floating_cap
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    TraceSpan,
    Tracer,
    iter_events,
    phase_seconds,
)


class TestTracer:
    def test_nesting_and_record_shape(self):
        tracer = Tracer("root", purpose="test")
        with tracer.span("a"):
            with tracer.span("b", depth=2):
                pass
            with tracer.span("c"):
                pass
        record = tracer.to_record()
        assert record["name"] == "root"
        assert record["meta"] == {"purpose": "test"}
        (a,) = record["children"]
        assert [child["name"] for child in a["children"]] == ["b", "c"]
        assert a["children"][0]["meta"] == {"depth": 2}

    def test_durations_are_monotone(self):
        tracer = Tracer("root")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        record = tracer.to_record()
        outer = record["children"][0]
        inner = outer["children"][0]
        assert 0.0 <= inner["duration_s"] <= outer["duration_s"]
        assert outer["duration_s"] <= record["duration_s"]
        assert inner["t_start_s"] >= outer["t_start_s"]

    def test_counter_deltas(self):
        stats = SolverStats()
        stats.add("triangular_solves", 3)
        tracer = Tracer("root")
        with tracer.span("work", stats=stats):
            stats.add("triangular_solves", 2)
            stats.add("solve_columns", 8)
        record = tracer.to_record()
        counters = record["children"][0]["counters"]
        # Deltas, not totals — and untouched fields are omitted.
        assert counters == {"triangular_solves": 2, "solve_columns": 8}

    def test_events_attach_to_innermost_open_span(self):
        tracer = Tracer("root")
        tracer.event("at_root", n=0)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("deep", n=1)
            tracer.event("shallow", n=2)
        record = tracer.to_record()
        flattened = [(span, e["name"]) for span, e in iter_events(record)]
        assert flattened == [("root", "at_root"), ("outer", "shallow"),
                             ("inner", "deep")]

    def test_exception_marks_span_and_unwinds_stack(self):
        tracer = Tracer("root")
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        with tracer.span("after"):
            pass
        record = tracer.to_record()
        doomed, after = record["children"]
        assert doomed["meta"] == {"error": "RuntimeError"}
        assert after["name"] == "after"  # nested under root, not under doomed

    def test_span_meta_mutable_inside_block(self):
        tracer = Tracer("root")
        with tracer.span("phase") as span:
            span.meta["orders"] = 5
        assert tracer.to_record()["children"][0]["meta"] == {"orders": 5}

    def test_payload_coercion(self):
        tracer = Tracer("root")
        tracer.event(
            "mixed",
            np_int=np.int64(4),
            np_float=np.float64(0.5),
            cplx=complex(1.0, -2.0),
            seq=(np.float32(1.0), 2),
            obj=object(),
        )
        record = tracer.to_record()
        data = record["events"][0]["data"]
        assert data["np_int"] == 4 and isinstance(data["np_int"], int)
        assert data["np_float"] == 0.5 and isinstance(data["np_float"], float)
        assert data["cplx"] == {"re": 1.0, "im": -2.0}
        assert data["seq"] == [1.0, 2]
        assert isinstance(data["obj"], str)
        json.dumps(record)  # everything JSON-safe

    def test_round_trip(self):
        tracer = Tracer("root", kind="round-trip")
        with tracer.span("a", stats=None, node="x"):
            tracer.event("e", value=1)
        record = tracer.to_record()
        rebuilt = TraceSpan.from_record(record)
        assert rebuilt.to_record() == record
        assert [s.name for s in rebuilt.walk()] == ["root", "a"]
        assert isinstance(rebuilt.children[0].events[0], TraceEvent)

    def test_record_is_picklable(self):
        tracer = Tracer("root")
        with tracer.span("a"):
            tracer.event("e", v=np.float64(1.5))
        record = tracer.to_record()
        assert pickle.loads(pickle.dumps(record)) == record


class TestNullTracer:
    def test_is_shared_and_inert(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False
        ctx_a = NULL_TRACER.span("a", stats=SolverStats(), meta=1)
        ctx_b = NULL_TRACER.span("b")
        assert ctx_a is ctx_b  # one preallocated context, no allocation
        with ctx_a as span:
            assert span is None
        assert NULL_TRACER.event("anything", x=1) is None
        assert NULL_TRACER.to_record() is None

    def test_helpers_tolerate_untraced_runs(self):
        assert phase_seconds(None) == {}
        assert list(iter_events(None)) == []


class TestPhaseSeconds:
    def _record(self):
        return {
            "name": "root", "duration_s": 10.0,
            "children": [
                {"name": "a", "duration_s": 6.0,
                 "children": [{"name": "b", "duration_s": 2.0}]},
                {"name": "b", "duration_s": 3.0},
            ],
        }

    def test_exclusive_self_time(self):
        phases = phase_seconds(self._record())
        assert phases == {"root": 1.0, "a": 4.0, "b": 5.0}
        assert sum(phases.values()) == pytest.approx(10.0)

    def test_inclusive(self):
        phases = phase_seconds(self._record(), exclusive=False)
        assert phases == {"root": 10.0, "a": 6.0, "b": 5.0}


class TestAnalyzerIntegration:
    def test_traced_analysis_has_expected_phases_and_events(self):
        tracer = Tracer("fig22")
        # leak_resistance=None keeps the C11/C12 group truly floating, so
        # the trapped-charge resolution path (and its event) must run.
        analyzer = AweAnalyzer(fig22_floating_cap(leak_resistance=None),
                               {"Vin": Step(0.0, 5.0)}, tracer=tracer)
        analyzer.response("7", error_target=0.01)
        record = tracer.to_record()
        phases = phase_seconds(record)
        for name in ("mna_assembly", "lu", "operating_points",
                     "moment_recursion", "response", "pade_escalation",
                     "pade", "residues", "waveform"):
            assert name in phases, name
        events = {e["name"] for _, e in iter_events(record)}
        assert "backend_selected" in events
        assert "trapped_charge_resolved" in events  # the floating C11/C12 group
        assert "order_accepted" in events

    def test_escalation_events_carry_error_estimates(self):
        tracer = Tracer("fig22")
        analyzer = AweAnalyzer(fig22_floating_cap(), {"Vin": Step(0.0, 5.0)},
                               tracer=tracer)
        analyzer.response("12", error_target=0.001)
        escalations = [e for _, e in iter_events(tracer.to_record())
                       if e["name"] == "order_escalation"]
        assert escalations
        for event in escalations:
            data = event["data"]
            assert set(data) >= {"subproblem", "node", "order", "reason",
                                 "error_estimate", "target"}
            assert data["node"] == "12"
        # At least one rejection must be a verified estimate-above-target.
        assert any(e["data"]["error_estimate"] is not None
                   for e in escalations)

    def test_use_tracer_swaps_mid_life(self):
        analyzer = AweAnalyzer(fig4_rc_tree(), {"Vin": Step(0.0, 5.0)})
        assert analyzer.tracer is NULL_TRACER
        analyzer.response("4", order=2)  # untraced warm-up, shared work done
        tracer = Tracer("second-job")
        analyzer.use_tracer(tracer)
        assert analyzer.system.tracer is tracer
        analyzer.response("2", order=2)
        record = tracer.to_record()
        phases = phase_seconds(record)
        # Only per-response work: the shared spans landed pre-swap (nowhere).
        assert "response" in phases and "mna_assembly" not in phases
        analyzer.use_tracer(None)
        assert analyzer.tracer is NULL_TRACER

    def test_identical_results_with_and_without_tracing(self):
        plain = AweAnalyzer(fig22_floating_cap(), {"Vin": Step(0.0, 5.0)})
        traced = AweAnalyzer(fig22_floating_cap(), {"Vin": Step(0.0, 5.0)},
                             tracer=Tracer("check"))
        a = plain.response("7", error_target=0.01)
        b = traced.response("7", error_target=0.01)
        assert a.order == b.order
        assert a.error_estimate == b.error_estimate
        np.testing.assert_array_equal(a.poles, b.poles)


class TestBatchTraces:
    def _jobs(self, n=4):
        return [
            AweJob(fig22_floating_cap(), ("7",), stimuli={"Vin": Step(0.0, 5.0)},
                   error_target=0.01, label=f"job-{i}")
            for i in range(n)
        ]

    def test_traces_off_by_default(self):
        results = BatchEngine().run(self._jobs(2))
        assert all(result.trace is None for result in results)

    def test_inline_traces(self):
        results = BatchEngine().run(self._jobs(3), trace=True)
        assert all(result.ok and result.trace is not None for result in results)
        # Reused analyzer: the first job of the circuit group carries the
        # shared spans, later jobs only their own response work.
        first, *rest = results
        assert "mna_assembly" in phase_seconds(first.trace)
        for result in rest:
            assert "response" in phase_seconds(result.trace)
        json.dumps([result.trace for result in results])

    def test_traces_survive_process_pool(self):
        results = BatchEngine().run(self._jobs(4), workers=2, trace=True)
        assert all(result.ok and result.trace is not None for result in results)
        json.dumps([result.trace for result in results])

    def test_failed_job_still_traced(self):
        jobs = self._jobs(1) + [
            AweJob(fig22_floating_cap(), ("no_such_node",),
                   stimuli={"Vin": Step(0.0, 5.0)}, label="bad")
        ]
        results = BatchEngine().run(jobs, trace=True)
        assert results[0].ok and not results[1].ok
        assert results[1].trace is not None
        # The engine stamps a job_failed event so the trace explains the
        # death even when the exception fired outside any span.
        failures = [e for _, e in iter_events(results[1].trace)
                    if e["name"] == "job_failed"]
        assert failures and failures[0]["data"]["error_type"] == "CircuitError"
