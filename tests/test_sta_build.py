"""The design → timing-graph freeze: library, design model, builder,
corners, and the full ``run_sta`` driver.

The AWE-backed interconnect delays are validated against the engine's
own Elmore mode (loose agreement — they are different models of the same
wire) and against physical monotonicity: slower corners and heavier
wires can only reduce slack.
"""

import math

import pytest

from repro.errors import StaError
from repro.sta import (
    NOMINAL,
    CellLibrary,
    Corner,
    Design,
    Instance,
    Net,
    PortIn,
    PortOut,
    WireSegment,
    build_timing_graph,
    default_library,
    run_sta,
)
from repro.sta.library import DelayTable, TimingArc, Cell
from repro.trace import Tracer


def demo_design(drive_resistance=500.0, wire_r=200.0, wire_c=15e-15):
    """One INV_X1 between a driven input and a constrained output."""
    return Design(
        name="demo",
        inputs=(PortIn("i1", net="n_in", arrival=0.0, slew=2e-11,
                       drive_resistance=drive_resistance),),
        outputs=(PortOut("o1", net="n_out", required=5e-10, load=4e-15),),
        instances=(Instance("u1", "INV_X1", {"A": "n_in", "Y": "n_out"}),),
        nets=(Net("n_in", ()),
              Net("n_out", (WireSegment("root", "o1", wire_r, wire_c),))),
    )


def two_stage_design():
    """input -> INV_X1 -> wire -> BUF_X2 -> output, all nets wired."""
    return Design(
        name="two-stage",
        inputs=(PortIn("clk", net="n0", arrival=0.0, slew=1e-11,
                       drive_resistance=200.0),),
        outputs=(PortOut("out", net="n2", required=2e-9, load=5e-15),),
        instances=(
            Instance("g1", "INV_X1", {"A": "n0", "Y": "n1"}),
            Instance("g2", "BUF_X2", {"A": "n1", "Y": "n2"}),
        ),
        nets=(
            Net("n0", ()),
            Net("n1", (WireSegment("root", "m", 150.0, 10e-15),
                       WireSegment("m", "g2.A", 150.0, 10e-15))),
            Net("n2", (WireSegment("root", "out", 100.0, 8e-15),)),
        ),
    )


class TestDelayTable:
    def test_linear_model_reproduced_exactly_on_grid(self):
        table = DelayTable.from_linear(1e-12, 0.5, 2.0,
                                       (1e-12, 1e-11), (1e-15, 1e-14))
        for s in (1e-12, 1e-11):
            for c in (1e-15, 1e-14):
                assert table.lookup(s, c) == pytest.approx(
                    1e-12 + 0.5 * s + 2.0 * c, rel=1e-12)

    def test_bilinear_interpolation_inside_the_grid(self):
        table = DelayTable((1.0, 3.0), (10.0, 30.0),
                           [[1.0, 2.0], [3.0, 4.0]])
        assert table.lookup(2.0, 20.0) == pytest.approx(2.5)

    def test_lookup_clamps_outside_the_grid(self):
        table = DelayTable((1.0, 2.0), (1.0, 2.0), [[5.0, 6.0], [7.0, 8.0]])
        assert table.lookup(0.0, 0.0) == 5.0
        assert table.lookup(99.0, 99.0) == 8.0

    def test_scaled(self):
        table = DelayTable((1.0,), (1.0,), [[3.0]])
        assert table.scaled(2.0).lookup(1.0, 1.0) == 6.0

    def test_dict_round_trip(self):
        table = DelayTable.from_linear(1e-12, 0.1, 0.2, (1.0, 2.0), (3.0, 4.0))
        assert DelayTable.from_dict(table.to_dict()) == table

    def test_axis_must_be_increasing(self):
        with pytest.raises(StaError, match="strictly increasing"):
            DelayTable((2.0, 1.0), (1.0,), [[1.0], [1.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(StaError, match="shape"):
            DelayTable((1.0, 2.0), (1.0,), [[1.0]])

    def test_unknown_fields_rejected(self):
        with pytest.raises(StaError, match="unknown fields"):
            DelayTable.from_dict({"slews": [1.0], "loads": [1.0],
                                  "values": [[1.0]], "bogus": 1})


class TestLibrary:
    def test_default_library_contents(self):
        lib = default_library()
        assert lib.names == ("BUF_X2", "INV_X1", "INV_X4", "NAND2_X1",
                             "NOR2_X1")
        inv = lib["INV_X1"]
        assert inv.input_pins == ("A",) and inv.output_pins == ("Y",)
        assert inv.arcs_to("Y")[0].input == "A"

    def test_default_library_is_stable(self):
        assert default_library().to_dict() == default_library().to_dict()

    def test_unknown_cell_names_the_known_ones(self):
        with pytest.raises(StaError, match="INV_X1"):
            default_library()["FLUX_CAP"]

    def test_dict_round_trip(self):
        lib = default_library()
        again = CellLibrary.from_dict(lib.to_dict())
        assert again.to_dict() == lib.to_dict()

    def test_cell_validation(self):
        delay = DelayTable((1.0,), (1.0,), [[1.0]])
        arc = TimingArc("A", "Y", delay, delay)
        with pytest.raises(StaError, match="unknown input pin"):
            Cell("X", {"B": 1e-15}, {"Y": 100.0}, (arc,))
        with pytest.raises(StaError, match="must be > 0"):
            Cell("X", {"A": 1e-15}, {"Y": 0.0}, (arc,))
        with pytest.raises(StaError, match="duplicate arc"):
            Cell("X", {"A": 1e-15}, {"Y": 100.0}, (arc, arc))


class TestDesignModel:
    def test_canonical_dict_round_trip(self):
        design = two_stage_design()
        payload = design.to_canonical_dict()
        assert Design.from_dict(payload).to_canonical_dict() == payload

    def test_reserved_and_dotted_names_rejected(self):
        with pytest.raises(StaError, match="must not contain"):
            PortIn("a.b", net="n")
        with pytest.raises(StaError, match="reserved"):
            WireSegment("root", "drv", 1.0, 1e-15)

    def test_double_driven_net_rejected(self):
        design = Design(
            name="bad",
            inputs=(PortIn("i1", net="n1"), PortIn("i2", net="n1")),
            outputs=(PortOut("o1", net="n1", required=1e-9),),
            nets=(Net("n1"),),
        )
        with pytest.raises(StaError, match="driven by both"):
            design.validate(default_library())

    def test_undriven_and_sinkless_nets_rejected(self):
        lib = default_library()
        no_driver = Design(
            name="bad", inputs=(PortIn("i1", net="n1"),),
            outputs=(PortOut("o1", net="n2", required=1e-9),
                     PortOut("o2", net="n1", required=1e-9)),
            nets=(Net("n1"), Net("n2")),
        )
        with pytest.raises(StaError, match="no driver"):
            no_driver.validate(lib)
        no_sink = Design(
            name="bad", inputs=(PortIn("i1", net="n1"),),
            outputs=(PortOut("o1", net="n1", required=1e-9),),
            nets=(Net("n1"), Net("n2")),
        )
        with pytest.raises(StaError, match="has no driver|no sinks"):
            no_sink.validate(lib)

    def test_unconnected_pin_rejected(self):
        design = Design(
            name="bad", inputs=(PortIn("i1", net="n1"),),
            outputs=(PortOut("o1", net="n2", required=1e-9),),
            instances=(Instance("u1", "NAND2_X1", {"A": "n1", "Y": "n2"}),),
            nets=(Net("n1"), Net("n2")),
        )
        with pytest.raises(StaError, match="unconnected: B"):
            design.validate(default_library())

    def test_wire_must_tap_every_sink(self):
        design = demo_design()
        broken = Design(
            name="bad", inputs=design.inputs, outputs=design.outputs,
            instances=design.instances,
            nets=(Net("n_in", ()),
                  Net("n_out", (WireSegment("root", "elsewhere",
                                            100.0, 1e-15),))),
        )
        with pytest.raises(StaError, match="does not tap sink"):
            broken.validate(default_library())

    def test_combinational_cycle_rejected(self):
        design = Design(
            name="ring",
            inputs=(PortIn("i1", net="n_in"),),
            outputs=(PortOut("o1", net="n1", required=1e-9),),
            instances=(
                Instance("u1", "NAND2_X1",
                         {"A": "n_in", "B": "n2", "Y": "n1"}),
                Instance("u2", "INV_X1", {"A": "n1", "Y": "n2"}),
            ),
            nets=(Net("n_in"), Net("n1"), Net("n2")),
        )
        with pytest.raises(StaError, match="cycle"):
            design.validate(default_library())


class TestBuilder:
    def test_awe_build_produces_sane_timing(self):
        built = build_timing_graph(demo_design())
        assert built.interconnect == "awe"
        assert built.corner is NOMINAL
        order = built.graph.topological_order()
        assert set(order) == {"i1", "u1.A", "u1.Y", "o1"}
        # All delays positive and finite; arrival at the endpoint too.
        for edge in built.graph.edges():
            assert math.isfinite(edge.delay) and edge.delay >= 0.0
        assert built.arrivals == {"i1": 0.0}
        assert built.required == {"o1": 5e-10}
        assert 0.0 < built.loads["u1.Y"] < 1e-12
        assert built.slews["u1.Y"] > 0.0

    def test_elmore_and_awe_agree_loosely(self):
        design = demo_design()
        awe = build_timing_graph(design, interconnect="awe")
        elm = build_timing_graph(design, interconnect="elmore")

        def net_delay(built):
            (edge,) = [e for e in built.graph.edges()
                       if e.kind == "net" and e.src == "u1.Y"]
            return edge.delay

        assert net_delay(elm) == pytest.approx(net_delay(awe), rel=0.5)

    def test_ideal_net_has_zero_delay(self):
        built = build_timing_graph(demo_design())
        (edge,) = [e for e in built.graph.edges()
                   if e.kind == "net" and e.src == "i1"]
        assert edge.delay == 0.0

    def test_heavier_wire_corner_slows_the_net(self):
        design = demo_design()
        slow = Corner(name="slow_wire", wire_r=2.0, wire_c=2.0)
        nominal = build_timing_graph(design)
        derated = build_timing_graph(design, corner=slow)

        def net_delay(built):
            (edge,) = [e for e in built.graph.edges()
                       if e.kind == "net" and e.src == "u1.Y"]
            return edge.delay

        assert net_delay(derated) > net_delay(nominal)

    def test_cell_corner_scales_cell_arcs(self):
        design = demo_design()
        nominal = build_timing_graph(design)
        derated = build_timing_graph(design, corner=Corner(name="sc", cell=1.5))

        def cell_delay(built):
            (edge,) = [e for e in built.graph.edges() if e.kind == "cell"]
            return edge.delay

        assert cell_delay(derated) > cell_delay(nominal)

    def test_unknown_interconnect_rejected(self):
        with pytest.raises(StaError, match="interconnect"):
            build_timing_graph(demo_design(), interconnect="psychic")

    def test_tracer_records_net_events(self):
        tracer = Tracer(name="sta")
        build_timing_graph(demo_design(), tracer=tracer)
        record = tracer.to_record()
        text = str(record)
        assert "sta_net" in text and "sta_frozen" in text

    def test_two_stage_arrival_is_monotone_along_the_chain(self):
        built = build_timing_graph(two_stage_design())
        from repro.sta import analyze
        res = analyze(built.graph, built.arrivals, built.required)
        assert (res.arrival["clk"] < res.arrival["g1.Y"]
                < res.arrival["g2.Y"] <= res.arrival["out"])
        assert res.worst_slack is not None and res.worst_slack > 0


class TestCorner:
    def test_round_trip(self):
        corner = Corner(name="fast", wire_r=0.8, wire_c=0.9, cell=0.7)
        assert Corner.from_dict(corner.to_dict()) == corner

    def test_bad_factors_rejected(self):
        with pytest.raises(StaError):
            Corner(name="bad", wire_r=0.0)
        with pytest.raises(StaError):
            Corner(name="bad", cell=float("nan"))

    def test_unknown_fields_rejected(self):
        with pytest.raises(StaError, match="unknown"):
            Corner.from_dict({"name": "x", "volts": 1.1})


class TestRunSta:
    def test_single_corner_run(self):
        run = run_sta(demo_design(), k=3)
        assert run.k == 3 and run.interconnect == "awe"
        assert len(run.corners) == 1
        analysis = run.corner("nominal")
        assert analysis.worst_slack == run.worst_slack
        assert analysis.paths
        assert analysis.paths[0].endpoint == "o1"
        assert analysis.paths[0].slack == run.worst_slack

    def test_slower_corner_reduces_slack(self):
        run = run_sta(demo_design(), corners=(
            NOMINAL, Corner(name="slow", wire_r=1.5, wire_c=1.5, cell=1.3)))
        assert run.corner("slow").worst_slack < run.corner("nominal").worst_slack
        assert run.worst_slack == run.corner("slow").worst_slack

    def test_duplicate_corner_names_rejected(self):
        with pytest.raises(StaError, match="unique"):
            run_sta(demo_design(), corners=(NOMINAL, Corner(name="nominal")))

    def test_k_validation(self):
        with pytest.raises(StaError):
            run_sta(demo_design(), k=-1)
        with pytest.raises(StaError):
            run_sta(demo_design(), k=True)

    def test_elmore_mode_runs_end_to_end(self):
        run = run_sta(two_stage_design(), interconnect="elmore", k=2)
        assert run.worst_slack is not None
        assert run.corners[0].built.interconnect == "elmore"
