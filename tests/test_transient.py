"""Tests for the SPICE-stand-in transient simulator."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem, simulate
from repro.analysis.dcop import StorageState
from repro.analysis.sources import DC, Pulse, Ramp, Step
from repro.errors import AnalysisError
from repro.papercircuits import fig16_stiff_rc_tree


class TestAgainstAnalytic:
    def test_rc_step(self, single_rc):
        result = simulate(single_rc, {"Vin": Step(0, 5)}, 5e-9)
        w = result.voltage("1")
        exact = 5 * (1 - np.exp(-w.times / 1e-9))
        assert np.abs(w.values - exact).max() < 5e-4 * 5

    def test_rc_ramp(self, single_rc):
        tau, T = 1e-9, 2e-9
        result = simulate(single_rc, {"Vin": Ramp(0, 5, rise_time=T)}, 8e-9)
        w = result.voltage("1")
        slope = 5 / T

        def ramp_response(t):
            r1 = slope * (t - tau + tau * np.exp(-t / tau))
            t2 = np.maximum(t - T, 0.0)
            r2 = slope * (t2 - tau + tau * np.exp(-t2 / tau))
            return np.where(w.times >= T, r1 - r2, r1)

        assert np.abs(w.values - ramp_response(w.times)).max() < 5e-4 * 5

    def test_series_rlc_ringing(self, series_rlc):
        result = simulate(series_rlc, {"Vin": Step(0, 5)}, 3e-8)
        w = result.voltage("b")
        alpha = 10.0 / (2 * 10e-9)
        omega0sq = 1.0 / (10e-9 * 1e-12)
        omega_d = np.sqrt(omega0sq - alpha**2)
        t = w.times
        exact = 5 * (
            1 - np.exp(-alpha * t) * (np.cos(omega_d * t) + alpha / omega_d * np.sin(omega_d * t))
        )
        assert np.abs(w.values - exact).max() < 2e-3 * 5

    def test_initial_condition_decay(self, single_rc):
        single_rc.set_initial_voltage("C1", 3.0)
        result = simulate(single_rc, {"Vin": DC(0.0)}, 5e-9)
        w = result.voltage("1")
        assert np.abs(w.values - 3.0 * np.exp(-w.times / 1e-9)).max() < 2e-3


class TestMechanics:
    def test_refinement_reported(self, single_rc):
        result = simulate(single_rc, {"Vin": Step(0, 5)}, 5e-9, steps=16)
        assert result.refinements >= 1

    def test_no_refinement_mode(self, single_rc):
        result = simulate(single_rc, {"Vin": Step(0, 5)}, 5e-9, refine_tolerance=None)
        assert result.refinements == 0

    def test_backward_euler_runs(self, single_rc):
        result = simulate(single_rc, {"Vin": Step(0, 5)}, 5e-9, method="backward_euler")
        w = result.voltage("1")
        exact = 5 * (1 - np.exp(-w.times / 1e-9))
        assert np.abs(w.values - exact).max() < 5e-3 * 5

    def test_unknown_method(self, single_rc):
        with pytest.raises(AnalysisError):
            simulate(single_rc, {}, 1e-9, method="gear")

    def test_bad_time_range(self, single_rc):
        with pytest.raises(AnalysisError):
            simulate(single_rc, {}, 0.0)

    def test_unknown_stimulus_source(self, single_rc):
        with pytest.raises(AnalysisError, match="unknown sources"):
            simulate(single_rc, {"Vxx": Step(0, 5)}, 1e-9)

    def test_unlisted_source_steps_dc0_to_dc(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", dc=5.0, dc0=0.0)
        ckt.add_resistor("R", "a", "b", 1e3)
        ckt.add_capacitor("C", "b", "0", 1e-12)
        result = simulate(ckt, {}, 1.5e-8)
        w = result.voltage("b")
        assert w.values[-1] == pytest.approx(5.0, rel=1e-3)
        assert w.values[0] == pytest.approx(0.0, abs=1e-6)

    def test_current_waveform_output(self, single_rc):
        result = simulate(single_rc, {"Vin": Step(0, 5)}, 5e-9)
        i = result.current("Vin")
        # At t=0+ the full 5 V is across R1: 5 mA out of the source.
        assert i.values[0] == pytest.approx(-5e-3, rel=1e-6)

    def test_capacitor_voltage_output(self, floating_node_circuit):
        result = simulate(floating_node_circuit, {"Vin": Step(0, 5)}, 2e-8)
        vc = result.capacitor_voltage("Cc")
        # Final: v(1) = 5, v(f) = 5·0.5/2.5 = 1 → 4 V across the coupler.
        assert vc.values[-1] == pytest.approx(4.0, rel=1e-2)

    def test_ground_voltage_is_zero(self, single_rc):
        result = simulate(single_rc, {"Vin": Step(0, 5)}, 1e-9)
        assert np.all(result.voltage("0").values == 0.0)

    def test_explicit_initial_state(self, single_rc):
        state = StorageState({"C1": 2.0}, {})
        result = simulate(single_rc, {"Vin": DC(0.0)}, 5e-9, initial_state=state)
        assert result.voltage("1").values[0] == pytest.approx(2.0)


class TestTrBdf2:
    def test_no_algebraic_parasite_on_ringing_ic(self, series_rlc):
        # Plain trapezoidal leaves a persistent (−1)^n parasite on the MNA
        # algebraic variables for this inductor-IC problem; TR-BDF2
        # (the default) must settle cleanly to zero.
        series_rlc.set_initial_current("L1", 5e-3)
        series_rlc.set_initial_voltage("C1", 0.0)
        result = simulate(series_rlc, {"Vin": DC(0.0)}, 1.2e-8,
                          refine_tolerance=5e-4)
        w = result.voltage("a")
        tail = np.abs(w.values[-20:])
        # The physical envelope at t = 6·(2L/R) is e⁻⁶ ≈ 0.25 % of swing;
        # the trapezoidal parasite was ~20 % and did not decay at all.
        assert tail.max() < 4e-3 * np.abs(w.values).max()
        # And the samples must not alternate in sign step to step.
        signs = np.sign(w.values[-20:])
        assert not np.all(signs[1:] * signs[:-1] <= 0)

    def test_second_order_accuracy(self, single_rc):
        # Fixed-grid error must shrink ~4x per step-count doubling.
        errors = []
        for steps in (50, 100, 200):
            result = simulate(single_rc, {"Vin": Step(0, 5)}, 5e-9,
                              steps=steps, refine_tolerance=None)
            w = result.voltage("1")
            exact = 5 * (1 - np.exp(-w.times / 1e-9))
            errors.append(np.abs(w.values - exact).max())
        assert errors[0] / errors[1] > 3.0
        assert errors[1] / errors[2] > 3.0


class TestStiffCircuit:
    def test_stiff_tree_converges(self):
        ckt = fig16_stiff_rc_tree(sharing_voltage=5.0)
        result = simulate(ckt, {"Vin": Step(0, 5)}, 6e-9)
        w = result.voltage("7")
        assert w.values[-1] == pytest.approx(5.0, rel=1e-3)

    def test_pulse_returns_to_zero(self, single_rc):
        stim = Pulse(0, 5, delay=0.0, rise=0.1e-9, width=2e-9, fall=0.1e-9)
        result = simulate(single_rc, {"Vin": stim}, 1.2e-8)
        w = result.voltage("1")
        assert abs(w.values[-1]) < 0.02
        assert w.values.max() > 4.0
