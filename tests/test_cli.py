"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main

DECK = """\
cli test net
Vin in 0 STEP(0 5)
R1 in 1 1k
C1 1 0 1p
R2 1 2 2k
C2 2 0 0.5p
.end
"""


@pytest.fixture
def deck_file(tmp_path):
    path = tmp_path / "net.sp"
    path.write_text(DECK)
    return str(path)


class TestReport:
    def test_basic_report(self, deck_file, capsys):
        assert main(["report", deck_file, "--node", "2"]) == 0
        out = capsys.readouterr().out
        assert "AWE timing report" in out
        assert "cli test net" in out
        assert " 2 " in out

    def test_fixed_order(self, deck_file, capsys):
        assert main(["report", deck_file, "--node", "2", "--order", "1"]) == 0
        out = capsys.readouterr().out
        assert "    1 " in out

    def test_threshold_column(self, deck_file, capsys):
        assert main(
            ["report", deck_file, "--node", "2", "--threshold", "4.0"]
        ) == 0
        assert "thr delay" in capsys.readouterr().out

    def test_multiple_nodes(self, deck_file, capsys):
        assert main(["report", deck_file, "--node", "1", "--node", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n  1 ") + out.count("\n  2 ") >= 2

    def test_missing_deck(self, capsys):
        assert main(["report", "/nonexistent.sp", "--node", "2"]) == 2

    def test_bad_node(self, deck_file, capsys):
        assert main(["report", deck_file, "--node", "zz"]) == 1
        assert "error" in capsys.readouterr().err


class TestPoles:
    def test_exact_poles(self, deck_file, capsys):
        assert main(["poles", deck_file]) == 0
        out = capsys.readouterr().out
        assert "exact poles (2)" in out

    def test_awe_poles(self, deck_file, capsys):
        assert main(["poles", deck_file, "--order", "2", "--node", "2"]) == 0
        out = capsys.readouterr().out
        assert "AWE poles, order 2" in out

    def test_order_without_node(self, deck_file, capsys):
        assert main(["poles", deck_file, "--order", "2"]) == 2


class TestSimulate:
    def test_summary(self, deck_file, capsys):
        assert main(["simulate", deck_file, "--node", "2", "--t-stop", "2e-8"]) == 0
        out = capsys.readouterr().out
        assert "transient:" in out
        assert "v(2)" in out

    def test_csv_output(self, deck_file, tmp_path, capsys):
        csv = str(tmp_path / "wave.csv")
        assert main(
            ["simulate", deck_file, "--node", "1", "--node", "2",
             "--t-stop", "2e-8", "--csv", csv]
        ) == 0
        data = np.genfromtxt(csv, delimiter=",", names=True)
        assert {"time", "v1", "v2"} <= set(data.dtype.names)
        assert data["v2"][-1] == pytest.approx(5.0, rel=1e-2)


class TestShippedDecks:
    """The decks under examples/decks must stay loadable by every command."""

    @pytest.fixture(params=["bus_segment.sp", "pcb_trace.sp"])
    def shipped(self, request):
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "examples",
                            "decks", request.param)
        return os.path.abspath(path)

    def test_poles(self, shipped, capsys):
        assert main(["poles", shipped]) == 0
        assert "exact poles" in capsys.readouterr().out

    def test_report_runs(self, shipped, capsys):
        node = "a3" if "bus" in shipped else "t6"
        assert main(["report", shipped, "--node", node, "--target", "0.05"]) == 0

    def test_victim_without_transition_reports_na(self, capsys):
        import os

        deck = os.path.abspath(os.path.join(
            os.path.dirname(__file__), "..", "examples", "decks",
            "bus_segment.sp"))
        assert main(["report", deck, "--node", "v2", "--target", "0.05"]) == 0
        assert "n/a" in capsys.readouterr().out


class TestSensitivity:
    def test_report(self, deck_file, capsys):
        assert main(["sensitivity", deck_file, "--node", "2"]) == 0
        out = capsys.readouterr().out
        assert "Elmore" in out
        assert "R1" in out and "C2" in out

    def test_top_limit(self, deck_file, capsys):
        assert main(["sensitivity", deck_file, "--node", "2", "--top", "2"]) == 0
        out = capsys.readouterr().out
        # Header + exactly two contributor lines mentioning elements.
        contributor_lines = [l for l in out.splitlines() if l.startswith("  R") or l.startswith("  C")]
        assert len(contributor_lines) == 2

    def test_unknown_node(self, deck_file, capsys):
        assert main(["sensitivity", deck_file, "--node", "zz"]) == 1


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


DECK_B = """\
second net
Vin in 0 STEP(0 5)
R1 in 1 5k
C1 1 0 2p
R2 1 2 1k
C2 2 0 1p
.end
"""


class TestBatch:
    @pytest.fixture
    def two_decks(self, tmp_path):
        a = tmp_path / "a.sp"
        b = tmp_path / "b.sp"
        a.write_text(DECK)
        b.write_text(DECK_B)
        return [str(a), str(b)]

    def test_batch_two_decks(self, two_decks, capsys):
        assert main(["batch", *two_decks, "--node", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch: 2 job(s)" in out
        assert "cli test net" in out and "second net" in out

    def test_batch_multiple_nodes(self, two_decks, capsys):
        assert main(["batch", *two_decks, "--node", "1", "--node", "2"]) == 0
        out = capsys.readouterr().out
        # Each deck reports each node on its own line.
        assert out.count(" 1 ") >= 2 and out.count(" 2 ") >= 2

    def test_batch_stats_is_one_json_object_on_stderr(self, two_decks, capsys):
        import json

        assert main(["batch", *two_decks, "--node", "2", "--stats"]) == 0
        captured = capsys.readouterr()
        # The human-readable table stays on stdout; stderr carries exactly
        # one machine-readable JSON object.
        assert "batch: 2 job(s)" in captured.out
        assert "lu_factorizations" not in captured.out
        stats = json.loads(captured.err)
        assert stats["lu_factorizations"] >= 1
        assert stats["triangular_solves"] >= 1
        assert stats["jobs"] == 2

    def test_batch_stats_json_file(self, two_decks, tmp_path, capsys):
        import json

        path = tmp_path / "stats.json"
        assert main(["batch", *two_decks, "--node", "2",
                     "--stats-json", str(path)]) == 0
        captured = capsys.readouterr()
        assert str(path) in captured.err
        stats = json.loads(path.read_text())
        assert stats["lu_factorizations"] >= 1

    def test_batch_workers(self, two_decks, capsys):
        assert main(["batch", *two_decks, "--node", "2", "--workers", "2"]) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_batch_failure_isolated(self, two_decks, tmp_path, capsys):
        bad = tmp_path / "bad.sp"
        bad.write_text("broken deck\nnot an element line\n.end\n")
        assert main(["batch", two_decks[0], str(bad), "--node", "2"]) == 1
        out = capsys.readouterr().out
        assert "FAILED [parse]" in out
        assert "cli test net" in out  # the good deck still ran

    def test_batch_unknown_node_failure(self, two_decks, capsys):
        assert main(["batch", *two_decks, "--node", "zz"]) == 1
        out = capsys.readouterr().out
        assert "FAILED [CircuitError]" in out
        assert "2 of 2 job(s) failed" in out


class TestAnalyzeAgainstServer:
    """`python -m repro analyze` against an in-process daemon."""

    @pytest.fixture
    def server_url(self):
        from repro.service import ServiceServer

        with ServiceServer(port=0, workers=1) as server:
            yield server.url

    def test_analyze_then_cache_hit(self, deck_file, server_url, capsys):
        assert main(["analyze", deck_file, "--server", server_url,
                     "--node", "2"]) == 0
        captured = capsys.readouterr()
        assert "computed" in captured.err
        assert "cli test net" in captured.out
        assert " 2 " in captured.out

        assert main(["analyze", deck_file, "--server", server_url,
                     "--node", "2"]) == 0
        assert "cache hit" in capsys.readouterr().err

    def test_analyze_json_output(self, deck_file, server_url, tmp_path, capsys):
        import json

        out_path = tmp_path / "report.json"
        assert main(["analyze", deck_file, "--server", server_url,
                     "--node", "2", "--json", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro.run-report/1"
        assert document["totals"]["jobs_failed"] == 0

    def test_analyze_failure_exit_code(self, deck_file, server_url, capsys):
        assert main(["analyze", deck_file, "--server", server_url,
                     "--node", "zz"]) == 1
        assert "CircuitError" in capsys.readouterr().err

    def test_analyze_unreachable_server(self, deck_file, capsys):
        assert main(["analyze", deck_file, "--server",
                     "http://127.0.0.1:9", "--node", "2"]) == 1
        assert "error" in capsys.readouterr().err
