"""Tests for the fault-injection layer (`repro.faults`)."""

import pytest

from repro import faults
from repro.faults import NO_FAULTS, FaultPlan, FaultProbe


@pytest.fixture(autouse=True)
def _clean_plan():
    """Every test starts and ends without an installed process plan."""
    faults.reset()
    yield
    faults.reset()


class TestProbe:
    def test_rate_one_always_fires(self):
        probe = FaultProbe("http_503", 1.0)
        assert all(probe.fire() for _ in range(20))
        assert probe.checks == 20
        assert probe.fires == 20

    def test_rate_zero_never_fires(self):
        probe = FaultProbe("http_503", 0.0)
        assert not any(probe.fire() for _ in range(20))
        assert probe.fires == 0

    def test_cap_stops_firing_but_keeps_counting_checks(self):
        probe = FaultProbe("worker_crash", 1.0, times=2)
        assert [probe.fire() for _ in range(5)] == [True, True, False, False, False]
        assert probe.checks == 5
        assert probe.fires == 2

    def test_same_seed_same_sequence(self):
        draws = []
        for _ in range(2):
            probe = FaultProbe("http_429", 0.5, seed=7)
            draws.append([probe.fire() for _ in range(50)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])  # a real mix at p=0.5

    def test_different_seeds_differ(self):
        first = FaultProbe("http_429", 0.5, seed=1)
        second = FaultProbe("http_429", 0.5, seed=2)
        assert ([first.fire() for _ in range(50)]
                != [second.fire() for _ in range(50)])

    def test_probes_draw_independent_streams(self):
        """Adding a second probe must not perturb the first one's draws."""
        alone = FaultPlan.parse("http_429=0.5", seed=3)
        paired = FaultPlan.parse("http_429=0.5,http_503=0.5", seed=3)
        solo = [alone.fire("http_429") for _ in range(40)]
        mixed = []
        for _ in range(40):
            mixed.append(paired.fire("http_429"))
            paired.fire("http_503")  # interleave the other stream
        assert solo == mixed

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultProbe("http_429", 1.5)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            FaultProbe("http_429", 1.0, times=-1)


class TestParse:
    def test_full_grammar_round_trips(self):
        spec = "worker_crash=1:x1,http_429=0.1:0.05,slow_job=0.2:1.5:x3"
        plan = FaultPlan.parse(spec, seed=11)
        assert FaultPlan.parse(plan.spec(), seed=11).spec() == plan.spec()
        assert "worker_crash" in plan
        assert "http_timeout" not in plan
        assert plan.arg("http_429", 9.9) == 0.05
        assert plan.arg("worker_crash", 9.9) == 9.9  # no arg: default
        assert plan.arg("slow_job", 0.0) == 1.5

    def test_cap_and_arg_order_is_free(self):
        a = FaultPlan.parse("slow_job=1:x2:0.5")
        b = FaultPlan.parse("slow_job=1:0.5:x2")
        assert a.spec() == b.spec()

    def test_unknown_probe_rejected(self):
        with pytest.raises(ValueError, match="unknown fault probe"):
            FaultPlan.parse("segfault=1")

    def test_missing_rate_rejected(self):
        with pytest.raises(ValueError, match="name=rate"):
            FaultPlan.parse("worker_crash")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="not.*number"):
            FaultPlan.parse("worker_crash=often")

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError, match="fire cap"):
            FaultPlan.parse("worker_crash=1:xtwo")

    def test_duplicate_probe_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan.parse("http_429=1,http_429=0.5")

    def test_empty_terms_are_skipped(self):
        plan = FaultPlan.parse(" http_503=1 , ")
        assert plan.spec() == "http_503=1"


class TestPlanApi:
    def test_absent_probe_never_fires(self):
        plan = FaultPlan.parse("http_429=1")
        assert not plan.fire("http_503")

    def test_stats_snapshot(self):
        plan = FaultPlan.parse("http_429=1:x1,http_503=0")
        plan.fire("http_429")
        plan.fire("http_429")
        plan.fire("http_503")
        stats = plan.stats()
        assert stats["http_429"] == {"rate": 1.0, "checks": 2, "fires": 1}
        assert stats["http_503"]["fires"] == 0

    def test_sleep_reports_whether_it_fired(self):
        plan = FaultPlan.parse("slow_job=1:0,http_timeout=0")
        assert plan.sleep("slow_job", 0.0) is True
        assert plan.sleep("http_timeout", 0.0) is False


class TestActivation:
    def test_default_is_the_shared_noop(self):
        plan = faults.active()
        assert plan is NO_FAULTS
        assert not plan.enabled
        assert not plan.fire("worker_crash")
        assert plan.stats() == {}
        assert "worker_crash" not in plan

    def test_install_wins_and_reset_forgets(self):
        plan = faults.install(FaultPlan.parse("http_429=1"))
        assert faults.active() is plan
        faults.reset()
        assert faults.active() is NO_FAULTS

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "http_503=0.5")
        monkeypatch.setenv(faults.ENV_SEED, "42")
        faults.reset()
        plan = faults.active()
        assert plan.enabled
        assert plan.seed == 42
        assert "http_503" in plan
        # Resolved once: the plan is stable until reset even if the
        # environment changes underneath it.
        monkeypatch.setenv(faults.ENV_SPEC, "http_429=1")
        assert faults.active() is plan

    def test_env_seed_defaults_to_zero(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "http_503=1")
        monkeypatch.delenv(faults.ENV_SEED, raising=False)
        faults.reset()
        assert faults.active().seed == 0
