"""The top-K critical-path enumerator against brute force.

Two independent oracles hammer ``report_top_k_critical_paths``:

* a hypothesis strategy over random DAGs (``strategies.timing_dags``)
  with an exhaustive work-list enumerator (``strategies.
  brute_force_paths``) that shares no code with the engine, and
* an explicit 220-seed sweep over the conformance generator's layered
  DAGs — the ISSUE's "agrees with brute force on 200+ seeded random
  DAGs" acceptance criterion.

All delays are dyadic (integer multiples of 2**-30 s), so the engine
and the oracles must agree **bit for bit** on every slack and arrival —
the assertions use ``==``, not ``pytest.approx``.
"""

from hypothesis import given, settings

from repro.conformance import generate_sta_case
from repro.sta import TimingGraph, analyze, report_top_k_critical_paths

from tests.strategies import STA_TICK, brute_force_paths, timing_dags

INF = float("inf")


def assert_matches_oracle(graph, arrivals, required, k):
    """Engine top-k == oracle's globally sorted prefix, field by field."""
    oracle = brute_force_paths(graph, arrivals, required)
    got = report_top_k_critical_paths(graph, arrivals, required, k)
    want = oracle[:k]
    assert len(got) == len(want)
    for path, (slack, nodes, arrival, req, edges) in zip(got, want):
        assert path.nodes == nodes
        assert path.slack == slack
        assert path.arrival == arrival
        assert path.required == req
        assert path.edges == edges
    return oracle


@settings(max_examples=120, deadline=None)
@given(timing_dags())
def test_engine_matches_brute_force(dag):
    graph, arrivals, required, k = dag
    assert_matches_oracle(graph, arrivals, required, k)


@settings(max_examples=60, deadline=None)
@given(timing_dags())
def test_worst_path_slack_equals_worst_endpoint_slack(dag):
    graph, arrivals, required, _ = dag
    res = analyze(graph, arrivals, required)
    paths = report_top_k_critical_paths(graph, arrivals, required, 1)
    if res.worst_slack is None:
        assert paths == []
    else:
        assert paths[0].slack == res.worst_slack


def test_two_hundred_twenty_seeded_random_dags_match_brute_force():
    """The acceptance criterion: 220 generator DAGs, bit-exact agreement."""
    for seed in range(220):
        case = generate_sta_case(seed)
        oracle = assert_matches_oracle(
            case.graph, case.arrivals, case.required, case.k)
        # And with k past the total path count: full ordered enumeration.
        assert_matches_oracle(
            case.graph, case.arrivals, case.required, len(oracle) + 3)


def test_enumeration_is_deterministic_across_calls():
    case = generate_sta_case(11)
    first = report_top_k_critical_paths(
        case.graph, case.arrivals, case.required, case.k)
    second = report_top_k_critical_paths(
        case.graph, case.arrivals, case.required, case.k)
    assert first == second


def test_lexicographic_tie_break_between_equal_slack_paths():
    # Two branches with identical total delay: slack ties exactly, the
    # node sequence decides — ("a","b","d") < ("a","c","d").
    g = TimingGraph()
    g.add_edge("a", "b", 100 * STA_TICK)
    g.add_edge("a", "c", 100 * STA_TICK)
    g.add_edge("b", "d", 50 * STA_TICK)
    g.add_edge("c", "d", 50 * STA_TICK)
    paths = report_top_k_critical_paths(
        g, {"a": 0.0}, {"d": 1000 * STA_TICK}, 2)
    assert [p.nodes for p in paths] == [("a", "b", "d"), ("a", "c", "d")]
    assert paths[0].slack == paths[1].slack


def test_k_larger_than_path_count_returns_everything():
    g = TimingGraph()
    g.add_edge("a", "b", 1.0)
    paths = report_top_k_critical_paths(g, {"a": 0.0}, {"b": 2.0}, 99)
    assert len(paths) == 1


def test_deep_chain_is_fast_and_exact():
    # 200 edges in a straight line: one path, exact left-to-right sum.
    g = TimingGraph()
    total = 0.0
    for i in range(200):
        delay = (i + 1) * STA_TICK
        g.add_edge(f"n{i}", f"n{i + 1}", delay)
        total += delay
    paths = report_top_k_critical_paths(
        g, {"n0": 0.0}, {"n200": 2.0 ** -8}, 2)
    assert len(paths) == 1
    assert paths[0].arrival == total
    assert paths[0].slack == 2.0 ** -8 - total
