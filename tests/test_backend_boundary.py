"""Sparse/dense backend parity straddling the SuperLU auto-selection
boundary (``MnaSystem`` dimension 192).

An ``rc_ladder(n)`` yields an MNA system of dimension ``n + 2`` (n
ladder nodes + the source node + the source's branch current), so
``n = 189, 190, 191`` lands exactly at dimensions 191, 192, and 193 —
one below, on, and one above the threshold.  At each dimension the
auto-picked backend must match the documented rule, the trace must
record the choice, and a forced sparse vs forced dense factorisation of
the *same* system must agree on ``solve_augmented`` and on the final
AWE waveform to tight tolerance — the backend is an implementation
detail, never an answer change.
"""

import numpy as np
import pytest

from repro import AweAnalyzer, MnaSystem, Step
from repro.analysis.mna import _SPARSE_THRESHOLD
from repro.core.transfer import transfer_moments
from repro.papercircuits import rc_ladder
from repro.reduce import reduce_circuit
from repro.trace import Tracer, iter_events

BOUNDARY_SECTIONS = (189, 190, 191)  # dims 191, 192, 193


@pytest.mark.parametrize("sections", BOUNDARY_SECTIONS)
def test_auto_selection_follows_the_documented_rule(sections):
    system = MnaSystem(rc_ladder(sections))
    dimension = system.index.dimension
    assert dimension == sections + 2
    assert system.use_sparse == (dimension >= _SPARSE_THRESHOLD)


@pytest.mark.parametrize("sections", BOUNDARY_SECTIONS)
def test_trace_records_the_chosen_backend(sections):
    tracer = Tracer(name="boundary")
    system = MnaSystem(rc_ladder(sections), tracer=tracer)
    events = [event for _, event in iter_events(tracer.to_record())
              if event["name"] == "backend_selected"]
    assert len(events) == 1
    data = events[0]["data"]
    assert data["backend"] == ("sparse" if system.use_sparse else "dense")
    assert data["dimension"] == sections + 2
    assert data["forced"] is False


@pytest.mark.parametrize("sections", BOUNDARY_SECTIONS)
def test_solve_augmented_parity_across_backends(sections):
    circuit = rc_ladder(sections)
    dense = MnaSystem(circuit, sparse=False)
    sparse = MnaSystem(circuit, sparse=True)
    assert dense.use_sparse is False and sparse.use_sparse is True

    rng = np.random.default_rng(sections)
    rhs = rng.standard_normal(dense.index.dimension)
    x_dense = dense.solve_augmented(rhs)
    x_sparse = sparse.solve_augmented(rhs)
    scale = np.max(np.abs(x_dense)) or 1.0
    assert np.max(np.abs(x_dense - x_sparse)) / scale < 1e-9

    # Matrix right-hand sides take the batched path in both backends.
    rhs_block = rng.standard_normal((dense.index.dimension, 3))
    x_dense = dense.solve_augmented(rhs_block)
    x_sparse = sparse.solve_augmented(rhs_block)
    scale = np.max(np.abs(x_dense)) or 1.0
    assert np.max(np.abs(x_dense - x_sparse)) / scale < 1e-9


@pytest.mark.parametrize("sections", BOUNDARY_SECTIONS)
def test_reduced_parity_straddling_the_threshold(sections):
    """Pre-reduction composes with either backend at the boundary dims.

    The reduced ladder drops far below the threshold (so it runs dense)
    while the unreduced one straddles it — the comparison therefore
    crosses both the reduction and the backend fork.  DC gain and the
    Elmore moment must survive exactly; the waveform and delay to the
    documented uniform-chain bound.
    """
    circuit = rc_ladder(sections)
    stimuli = {"Vin": Step(0.0, 1.0)}
    node = str(sections)
    reduction = reduce_circuit(circuit, keep=(node,))
    assert reduction.reduced
    assert reduction.reduced_node_count < reduction.original_node_count / 4

    m_full = transfer_moments(MnaSystem(circuit), "Vin", node, 2)
    m_reduced = transfer_moments(MnaSystem(reduction.circuit), "Vin", node, 2)
    assert np.allclose(m_reduced, m_full, rtol=1e-9)

    for forced in (False, True):
        base = AweAnalyzer(circuit, stimuli, sparse=forced).response(node)
        reduced = AweAnalyzer(reduction.circuit, stimuli).response(node)
        times = np.linspace(0.0, base.waveform.suggested_window(), 400)
        v_base = base.waveform.evaluate(times)
        v_reduced = reduced.waveform.evaluate(times)
        swing = np.max(np.abs(v_base))
        assert np.max(np.abs(v_reduced - v_base)) < 0.02 * swing
        assert reduced.delay_50() == pytest.approx(base.delay_50(), rel=0.01)


def test_awe_waveform_parity_at_the_threshold_dimension():
    # sections=190 is dimension 192: the first auto-sparse system.
    circuit = rc_ladder(190)
    stimuli = {"Vin": Step(0.0, 1.0)}
    node = "190"
    dense = AweAnalyzer(circuit, stimuli, sparse=False).response(node)
    sparse = AweAnalyzer(circuit, stimuli, sparse=True).response(node)
    times = np.linspace(0.0, dense.waveform.suggested_window(), 400)
    v_dense = dense.waveform.evaluate(times)
    v_sparse = sparse.waveform.evaluate(times)
    assert np.max(np.abs(v_dense - v_sparse)) < 1e-6 * np.max(np.abs(v_dense))
    # Same model order and delay on both sides of the fork.
    assert dense.order == sparse.order
    assert dense.delay_50() == pytest.approx(sparse.delay_50(), rel=1e-9)
