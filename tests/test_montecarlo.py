"""Tests for Monte Carlo delay variation."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.papercircuits import fig4_rc_tree, fig9_grounded_resistor
from repro.timing import delay_corners, delay_distribution, uniform_tolerances


class TestSampling:
    def test_reproducible(self):
        circuit = fig4_rc_tree()
        tolerances = uniform_tolerances(circuit, 0.1)
        a = delay_distribution(circuit, "4", tolerances, samples=50, seed=7,
                               source_values={"Vin": 5.0})
        b = delay_distribution(circuit, "4", tolerances, samples=50, seed=7,
                               source_values={"Vin": 5.0})
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_linear_matches_exact_statistics(self):
        circuit = fig4_rc_tree()
        tolerances = uniform_tolerances(circuit, 0.05)
        linear = delay_distribution(circuit, "4", tolerances, samples=300,
                                    seed=3, source_values={"Vin": 5.0},
                                    method="linear")
        exact = delay_distribution(circuit, "4", tolerances, samples=300,
                                   seed=3, source_values={"Vin": 5.0},
                                   method="exact")
        # Same seed → same deltas: pointwise first-order agreement.
        assert np.abs(linear.samples - exact.samples).max() < 0.01 * exact.nominal
        assert linear.mean == pytest.approx(exact.mean, rel=2e-3)
        assert linear.std == pytest.approx(exact.std, rel=0.05)

    def test_corners_bracket_samples(self):
        circuit = fig9_grounded_resistor()
        tolerances = uniform_tolerances(circuit, 0.15)
        corners = delay_corners(circuit, "4", tolerances, {"Vin": 5.0})
        mc = delay_distribution(circuit, "4", tolerances, samples=400, seed=1,
                                source_values={"Vin": 5.0}, method="exact")
        assert mc.worst <= corners.corner_high * (1 + 1e-9)
        assert mc.best >= corners.corner_low * (1 - 1e-9)

    def test_statistics_interface(self):
        circuit = fig4_rc_tree()
        mc = delay_distribution(circuit, "4", uniform_tolerances(circuit, 0.1),
                                samples=200, seed=2, source_values={"Vin": 5.0})
        assert mc.best <= mc.quantile(0.5) <= mc.worst
        assert mc.mean == pytest.approx(mc.nominal, rel=0.03)
        assert mc.std > 0

    def test_unknown_element_rejected(self):
        with pytest.raises(AnalysisError):
            delay_distribution(fig4_rc_tree(), "4", {"Zz": 0.1},
                               source_values={"Vin": 5.0})

    def test_bad_method_rejected(self):
        with pytest.raises(AnalysisError):
            delay_distribution(fig4_rc_tree(), "4", {"R1": 0.1},
                               source_values={"Vin": 5.0}, method="magic")

    def test_zero_samples_rejected(self):
        with pytest.raises(AnalysisError):
            delay_distribution(fig4_rc_tree(), "4", {"R1": 0.1}, samples=0,
                               source_values={"Vin": 5.0})
