"""Equivalence tests across the solver paths.

The same moments must come out of every route through the linear-algebra
layer: incremental order escalation vs from-scratch recursion, the
batched multi-RHS recursion vs per-problem single-RHS recursion, and the
dense LAPACK path vs the sparse SuperLU path on either side of the
192-dimension switchover.
"""

import numpy as np
import pytest

from repro import AweAnalyzer, MnaSystem, Step
from repro.analysis.mna import _SPARSE_THRESHOLD
from repro.core.moments import (
    MomentSet,
    homogeneous_moments,
    homogeneous_moments_batch,
    particular_solution,
    particular_solutions,
)
from repro.papercircuits import random_rc_tree, rc_ladder

STIM = {"Vin": Step(0.0, 5.0)}


def homogeneous_state(system, source_value=5.0):
    """A realistic homogeneous initial state: step release toward DC."""
    from repro.analysis.dcop import dc_operating_point

    x_final = dc_operating_point(system, {"Vin": source_value})
    return -x_final  # x(0) = 0 released against the final state


class TestIncrementalEscalation:
    def test_extended_equals_from_scratch(self):
        system = MnaSystem(rc_ladder(12))
        y0 = homogeneous_state(system)
        scratch = homogeneous_moments(system, y0, 7)
        incremental = homogeneous_moments(system, y0, 2).extended(system, 5)
        assert incremental.count == scratch.count == 7
        for a, b in zip(scratch.vectors, incremental.vectors):
            # Same factorisation, same recursion, same order of operations.
            assert np.array_equal(a, b)

    def test_extended_from_empty(self):
        system = MnaSystem(rc_ladder(5))
        y0 = homogeneous_state(system)
        empty = MomentSet(y0, ())
        assert np.array_equal(
            empty.extended(system, 3).vectors[2],
            homogeneous_moments(system, y0, 3).vectors[2],
        )

    def test_batch_extended_incremental(self):
        system = MnaSystem(rc_ladder(8))
        y0s = np.column_stack(
            [homogeneous_state(system), homogeneous_state(system, 2.0)]
        )
        scratch = homogeneous_moments_batch(system, y0s, 6)
        incremental = homogeneous_moments_batch(system, y0s, 2).extended(system, 4)
        for a, b in zip(scratch.vectors, incremental.vectors):
            assert np.array_equal(a, b)


class TestMultiRhsEquivalence:
    @pytest.mark.parametrize("sparse", [False, True])
    def test_batch_columns_equal_single_recursions(self, sparse):
        circuit = rc_ladder(30)
        system_single = MnaSystem(circuit, sparse=sparse)
        system_batch = MnaSystem(circuit, sparse=sparse)
        rng = np.random.default_rng(42)
        y0s = rng.normal(size=(system_single.dimension, 3))
        batch = homogeneous_moments_batch(system_batch, y0s, 6)
        for i in range(3):
            single = homogeneous_moments(system_single, y0s[:, i], 6)
            column = batch.column(i)
            assert np.array_equal(column.initial, single.initial)
            for a, b in zip(single.vectors, column.vectors):
                scale = np.abs(a).max()
                assert np.abs(a - b).max() <= 1e-12 * scale

    def test_one_multi_rhs_call_per_order(self):
        """The batched recursion's whole point: the triangular-solve call
        count is independent of how many chains are advanced."""
        circuit = rc_ladder(20)
        wide = MnaSystem(circuit)
        narrow = MnaSystem(circuit)
        rng = np.random.default_rng(0)
        y0s = rng.normal(size=(wide.dimension, 5))
        homogeneous_moments_batch(wide, y0s, 8)
        homogeneous_moments(narrow, y0s[:, 0], 8)
        assert wide.stats.moment_solves == narrow.stats.moment_solves == 8
        assert wide.stats.triangular_solves == narrow.stats.triangular_solves
        assert wide.stats.solve_columns == 5 * narrow.stats.solve_columns
        assert wide.stats.moments_computed == 5 * 8

    def test_solve_augmented_matrix_matches_columns(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        rng = np.random.default_rng(7)
        rhs = rng.normal(size=(system.dimension, 4))
        charges = rng.normal(size=(len(system.charge_rows), 4))
        stacked = system.solve_augmented(rhs, charges)
        for i in range(4):
            single = system.solve_augmented(rhs[:, i], charges[:, i])
            assert np.abs(stacked[:, i] - single).max() <= 1e-12 * (
                np.abs(single).max() + 1e-300
            )

    def test_particular_solutions_match_singles(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        n = system.index.source_count
        u0s = np.column_stack([np.full(n, 5.0), np.full(n, 2.0)])
        u1s = np.zeros((n, 2))
        charges = np.column_stack(
            [np.zeros(len(system.floating_groups)),
             np.ones(len(system.floating_groups)) * 1e-12]
        )
        batch = particular_solutions(system, u0s, u1s, charges)
        for i, particular in enumerate(batch):
            single = particular_solution(
                system, u0s[:, i], u1s[:, i], charges[:, i]
            )
            assert np.allclose(particular.c0, single.c0, rtol=1e-12, atol=0)
            assert np.allclose(particular.c1, single.c1, rtol=1e-12, atol=0)


class TestSparseDenseSwitchover:
    def test_default_backend_threshold(self):
        # rc_ladder(n) has dimension n + 2 (n + 1 node voltages + Vin branch).
        below = MnaSystem(rc_ladder(_SPARSE_THRESHOLD - 3))
        at = MnaSystem(rc_ladder(_SPARSE_THRESHOLD - 2))
        assert below.dimension == _SPARSE_THRESHOLD - 1 and not below.use_sparse
        assert at.dimension == _SPARSE_THRESHOLD and at.use_sparse

    @pytest.mark.parametrize("sections", [60, _SPARSE_THRESHOLD + 40])
    def test_sparse_and_dense_agree(self, sections):
        """Moments and AWE poles must match across the two factorisation
        backends on the same circuit — on both sides of the switchover
        dimension (both sides were previously untested)."""
        circuit = rc_ladder(sections)
        dense_sys = MnaSystem(circuit, sparse=False)
        sparse_sys = MnaSystem(circuit, sparse=True)
        assert not dense_sys.use_sparse and sparse_sys.use_sparse
        y0 = homogeneous_state(dense_sys)
        dense_moments = homogeneous_moments(dense_sys, y0, 6)
        sparse_moments = homogeneous_moments(sparse_sys, y0, 6)
        row = dense_sys.index.node(str(sections))
        for a, b in zip(
            dense_moments.sequence_for(row), sparse_moments.sequence_for(row)
        ):
            assert a == pytest.approx(b, rel=1e-9)

    @pytest.mark.parametrize("sections", [60, _SPARSE_THRESHOLD + 40])
    def test_awe_poles_agree_across_backends(self, sections):
        circuit = rc_ladder(sections)
        node = str(sections)
        responses = [
            AweAnalyzer(circuit, STIM, sparse=sparse).response(node, order=3)
            for sparse in (False, True)
        ]
        dense, sparse = responses
        assert np.allclose(
            np.sort_complex(dense.poles), np.sort_complex(sparse.poles), rtol=1e-6
        )
        times = np.linspace(0.0, 5e-8, 200)
        assert np.allclose(
            dense.waveform.evaluate(times),
            sparse.waveform.evaluate(times),
            rtol=1e-6,
            atol=1e-9,
        )

    def test_random_tree_backends_agree(self):
        circuit = random_rc_tree(50, seed=11)
        dense = MnaSystem(circuit, sparse=False)
        sparse = MnaSystem(circuit, sparse=True)
        y0 = homogeneous_state(dense)
        a = homogeneous_moments(dense, y0, 5)
        b = homogeneous_moments(sparse, y0, 5)
        for va, vb in zip(a.vectors, b.vectors):
            assert np.allclose(va, vb, rtol=1e-9, atol=1e-30)
