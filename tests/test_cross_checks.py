"""Cross-cutting regression tests: independent implementations must agree.

Each test here pits two (or three) different code paths against each other
on the same physics — the redundancy that catches sign and convention
slips no single-module unit test would.
"""

import numpy as np
import pytest

from repro import (
    AweAnalyzer,
    Circuit,
    MnaSystem,
    Ramp,
    Step,
    circuit_poles,
    simulate,
)
from repro.core.error import cauchy_bound_distance, exact_l2_distance
from repro.core.model import PoleResidueModel
from repro.core.transfer import reduce_transfer
from repro.papercircuits import fig4_rc_tree, fig9_grounded_resistor, rc_ladder
from repro.rctree import generalized_elmore_delay, two_pole_model
from repro.timing import pi_model


class TestIntegratorsAgree:
    @pytest.mark.parametrize("method", ["trbdf2", "trapezoidal", "backward_euler"])
    def test_all_methods_converge_to_same_waveform(self, series_rlc, method):
        reference = 5 * 1.0  # final value
        # Backward Euler is first-order: Richardson needs a looser target
        # to converge on a ringing waveform in a sane number of doublings.
        tolerance = 1e-2 if method == "backward_euler" else 1e-3
        result = simulate(series_rlc, {"Vin": Step(0, 5)}, 2e-8, method=method,
                          refine_tolerance=tolerance)
        w = result.voltage("b")
        assert w.values[-1] == pytest.approx(reference, rel=5e-3)
        # All three must agree with the modal-exact answer at mid-swing.
        t_mid = 1e-9
        from repro.analysis.dcop import (
            dc_operating_point,
            initial_operating_point,
            resolve_initial_storage_state,
        )
        from repro.analysis.poles import exact_homogeneous_response

        system = MnaSystem(series_rlc)
        state = resolve_initial_storage_state(system, {"Vin": 0.0})
        x0 = initial_operating_point(series_rlc, system, state, {"Vin": 5.0})
        xf = dc_operating_point(system, {"Vin": 5.0})
        modal = exact_homogeneous_response(system, x0 - xf)
        exact_mid = xf[system.index.node("b")] + modal.evaluate(
            system.index.node("b"), np.array([t_mid])
        )[0]
        assert w(t_mid) == pytest.approx(exact_mid, abs=0.05)


class TestDelayDefinitionsAgree:
    def test_four_elmore_routes(self):
        """Tree walk, tree/link, first-order AWE pole, generalized eq. 3 —
        four implementations of the same number."""
        from repro.rctree import elmore_delays, treelink_elmore_delays

        circuit = fig4_rc_tree()
        walk = elmore_delays(circuit)["4"]
        treelink = treelink_elmore_delays(circuit, 5.0)["C4"]
        awe_pole = AweAnalyzer(circuit, {"Vin": Step(0, 5)}).response(
            "4", order=1
        ).poles[0].real
        area = generalized_elmore_delay(circuit, "4", {"Vin": 5.0})
        assert treelink == pytest.approx(walk, rel=1e-10)
        assert -1.0 / awe_pole == pytest.approx(walk, rel=1e-10)
        assert area == pytest.approx(walk, rel=1e-10)

    def test_two_pole_vs_transfer_reduction(self):
        """The standalone two-pole fit and the frequency-domain q=2
        reduction see the same circuit; their poles must agree (the
        transfer form has no initial-value row, so agreement is a
        nontrivial consistency check between the two matching systems)."""
        circuit = fig4_rc_tree()
        time_domain = two_pole_model(circuit, "4", 5.0)
        freq_domain = reduce_transfer(MnaSystem(circuit), "Vin", "4", 2)
        np.testing.assert_allclose(
            np.sort(np.array(time_domain.poles).real),
            np.sort(freq_domain.poles.real),
            rtol=1e-6,
        )


class TestTransferVsTimeDomain:
    def test_step_response_two_routes(self, rc_ladder3):
        """TransferModel.step_response vs the AweAnalyzer waveform."""
        system = MnaSystem(rc_ladder3)
        model = reduce_transfer(system, "Vin", "3", 3)
        analyzer = AweAnalyzer(rc_ladder3, {"Vin": Step(0, 5)})
        response = analyzer.response("3", order=3)
        t = np.linspace(0, 2e-8, 200)
        np.testing.assert_allclose(
            model.step_response(t, amplitude=5.0),
            response.waveform.evaluate(t),
            atol=1e-8,
        )

    def test_pi_model_consistent_with_elmore(self):
        """The driving-point y₁ (= ΣC) and the source-side Elmore view."""
        circuit = rc_ladder(6)
        pi = pi_model(MnaSystem(circuit), "Vin")
        total = sum(c.capacitance for c in circuit.capacitors)
        assert pi.total_capacitance == pytest.approx(total, rel=1e-9)


class TestErrorEstimatorsOrdering:
    def test_cauchy_vs_exact_on_mixed_orders(self):
        """The paper's eq. 46 case: a complex pair reference vs a
        lower-order candidate with one real pole — the bound must cover
        the exact distance and stay finite."""
        reference = PoleResidueModel((
            (complex(-1.0, 4.0), 1, complex(1.0, -0.5)),
            (complex(-1.0, -4.0), 1, complex(1.0, 0.5)),
            (complex(-6.0), 1, complex(0.4)),
        ))
        candidate = PoleResidueModel((
            (complex(-1.1, 3.9), 1, complex(0.9, -0.6)),
            (complex(-1.1, -3.9), 1, complex(0.9, 0.6)),
        ))
        exact = exact_l2_distance(reference, candidate)
        bound = cauchy_bound_distance(reference, candidate)
        assert np.isfinite(bound)
        assert bound >= exact * (1 - 1e-9)


class TestStimulusEquivalences:
    def test_pwl_step_equals_step(self, rc_ladder3):
        """A PWL encoding of a step must produce the identical response."""
        from repro.analysis.sources import PWL

        step = AweAnalyzer(rc_ladder3, {"Vin": Step(0, 5)}).response("3", order=2)
        pwl = AweAnalyzer(
            rc_ladder3, {"Vin": PWL([(0.0, 0.0), (0.0, 5.0)])}
        ).response("3", order=2)
        t = np.linspace(0, 1.5e-8, 300)
        np.testing.assert_allclose(step.waveform.evaluate(t),
                                   pwl.waveform.evaluate(t), rtol=1e-9)

    def test_two_half_sources_equal_one(self):
        """Linearity across sources: two stacked half-swing sources in
        series equal one full-swing source."""
        def ladder_with(sources):
            ckt = Circuit("stacked")
            if sources == 1:
                ckt.add_voltage_source("V1", "in", "0")
            else:
                ckt.add_voltage_source("V1", "in", "mid")
                ckt.add_voltage_source("V2", "mid", "0")
            ckt.add_resistor("R1", "in", "a", 1e3)
            ckt.add_capacitor("C1", "a", "0", 1e-12)
            return ckt

        single = AweAnalyzer(ladder_with(1), {"V1": Step(0, 5)}).response("a", order=1)
        stacked = AweAnalyzer(
            ladder_with(2), {"V1": Step(0, 2.5), "V2": Step(0, 2.5)}
        ).response("a", order=1)
        t = np.linspace(0, 5e-9, 100)
        np.testing.assert_allclose(single.waveform.evaluate(t),
                                   stacked.waveform.evaluate(t), rtol=1e-9)


class TestGroundedResistorConsistency:
    def test_final_values_three_routes(self):
        circuit = fig9_grounded_resistor()
        expected = 5.0 * 4.0 / 7.0
        # DC solve
        system = MnaSystem(circuit)
        from repro.analysis.dcop import dc_operating_point

        x = dc_operating_point(system, {"Vin": 5.0})
        assert x[system.index.node("4")] == pytest.approx(expected)
        # AWE final value
        response = AweAnalyzer(circuit, {"Vin": Step(0, 5)}).response("4", order=2)
        assert response.waveform.final_value() == pytest.approx(expected)
        # Transient tail
        w = simulate(circuit, {"Vin": Step(0, 5)}, 60.0).voltage("4")
        assert w.values[-1] == pytest.approx(expected, rel=1e-3)
