"""Resilience tests for the batch engine (`repro.engine.batch`).

Covers the self-healing process pool under injected worker crashes (one
rebuild re-runs only the lost jobs; a second loss becomes a structured
``WorkerCrashError`` record), the ``pool_rebuilds`` counter, numeric
equivalence of recovered results, and the nested ``_deadline`` branch
where the outer budget expires while an inner block runs.
"""

import time

import numpy as np
import pytest

from repro import AweJob, BatchEngine, Step, faults
from repro.engine.batch import _deadline
from repro.errors import BatchTimeoutError, WorkerCrashError
from repro.faults import FaultPlan
from repro.papercircuits import random_rc_tree

STIM = {"Vin": Step(0.0, 5.0)}


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.reset()
    yield
    faults.reset()


def distinct_jobs(count):
    """One job per distinct circuit so every job is its own pool chunk."""
    return [
        AweJob(random_rc_tree(5, seed=seed), ("3",), stimuli=STIM, order=2,
               label=f"net{seed}")
        for seed in range(count)
    ]


def poles_by_label(results):
    return {
        result.label: {node: response.poles
                       for node, response in result.responses.items()}
        for result in results
    }


class TestSelfHealingPool:
    def test_single_crash_recovers_with_one_rebuild(self):
        faults.install(FaultPlan.parse("worker_crash=1:x1"))
        engine = BatchEngine(workers=2)
        results = engine.run(distinct_jobs(4))
        assert [result.ok for result in results] == [True] * 4
        assert engine.stats()["pool_rebuilds"] == 1

    def test_recovered_results_match_fault_free_run(self):
        jobs = distinct_jobs(4)
        clean = BatchEngine(workers=2).run(jobs)

        faults.install(FaultPlan.parse("worker_crash=1:x1"))
        engine = BatchEngine(workers=2)
        healed = engine.run(jobs)
        assert engine.stats()["pool_rebuilds"] == 1

        clean_poles, healed_poles = poles_by_label(clean), poles_by_label(healed)
        assert clean_poles.keys() == healed_poles.keys()
        for label in clean_poles:
            for node in clean_poles[label]:
                np.testing.assert_array_equal(
                    clean_poles[label][node], healed_poles[label][node])

    def test_retried_jobs_carry_a_rebuild_trace_event(self):
        faults.install(FaultPlan.parse("worker_crash=1:x1"))
        results = BatchEngine(workers=2).run(distinct_jobs(3), trace=True)
        retried = [
            result for result in results
            if any(event["name"] == "pool_rebuild_retry"
                   for _, event in _iter_events(result.trace))
        ]
        # A broken pool loses every unfinished chunk, so anywhere from
        # one chunk to all of them may be re-run; what matters is that
        # the retried ones say so and everything still succeeded.
        assert retried, "no job recorded a pool_rebuild_retry event"
        assert all(result.ok for result in results)

    def test_persistent_crash_becomes_structured_failure(self):
        faults.install(FaultPlan.parse("worker_crash=1"))
        engine = BatchEngine(workers=2)
        results = engine.run(distinct_jobs(3))
        assert all(not result.ok for result in results)
        assert {result.error_type for result in results} == {
            WorkerCrashError.__name__}
        assert all("rebuilt once" in result.error for result in results)
        # One rebuild was attempted, not one per chunk — the pool is
        # rebuilt at most once per run.
        assert engine.stats()["pool_rebuilds"] == 1
        assert engine.stats()["jobs_failed"] == 3

    def test_inline_execution_ignores_worker_crash_probe(self):
        # workers=1 runs in-process: there is no pool to crash, and the
        # probe must not take the whole test process down.
        faults.install(FaultPlan.parse("worker_crash=1"))
        engine = BatchEngine(workers=1)
        results = engine.run(distinct_jobs(2))
        assert all(result.ok for result in results)
        assert engine.stats()["pool_rebuilds"] == 0


class TestSlowJobProbe:
    def test_injected_stall_trips_the_job_deadline(self):
        faults.install(FaultPlan.parse("slow_job=1:5"))
        results = BatchEngine().run(distinct_jobs(1), timeout=0.05)
        assert not results[0].ok
        assert results[0].error_type == "BatchTimeoutError"


class TestNestedDeadline:
    def test_inner_exit_rearms_expired_outer_budget(self):
        """The outer timer's budget can be fully spent while an inner
        block runs; on inner exit it must be re-armed with the minimal
        delay (not a negative one) so it still fires promptly."""
        with pytest.raises(BatchTimeoutError):
            with _deadline(0.05):
                with _deadline(5.0):
                    time.sleep(0.2)  # outer 50 ms budget expires in here
                # The outer alarm fires during this spin, not before the
                # inner block exits (the inner timer masked it).
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pass

    def test_inner_exit_rearms_remaining_outer_budget(self):
        began = time.monotonic()
        with pytest.raises(BatchTimeoutError):
            with _deadline(0.4):
                with _deadline(5.0):
                    time.sleep(0.05)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pass
        elapsed = time.monotonic() - began
        # Fired on the *remaining* outer budget (~0.35 s), not a fresh
        # 0.4 s and certainly not the inner 5 s.
        assert elapsed < 2.0


def _iter_events(trace):
    from repro.report.build import iter_events

    return iter_events(trace)
