"""Public-API surface regression tests.

Guards the contract a downstream user relies on: everything in each
package's ``__all__`` exists, is importable, and the top-level `repro`
namespace re-exports the advertised core names.  A rename or a dropped
re-export fails here before it fails in someone's notebook.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.circuit",
    "repro.analysis",
    "repro.core",
    "repro.rctree",
    "repro.timing",
    "repro.papercircuits",
    "repro.trace",
    "repro.report",
    "repro.service",
    "repro.gateway",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    exported = list(package.__all__)
    assert len(exported) == len(set(exported)), f"{package_name}: duplicates"


TOP_LEVEL_CONTRACT = [
    # the quickstart names every README example depends on
    "Circuit", "Resistor", "Capacitor", "Inductor", "VoltageSource",
    "CurrentSource", "Step", "Ramp", "Pulse", "PWL", "DC",
    "AweAnalyzer", "AweResponse", "AweWaveform", "PoleResidueModel",
    "awe_response", "simulate", "circuit_poles", "MnaSystem",
    "parse_netlist", "parse_netlist_file", "Waveform", "l2_error",
    # the exception hierarchy
    "ReproError", "CircuitError", "NetlistParseError", "TopologyError",
    "SingularCircuitError", "AnalysisError", "ApproximationError",
    "MomentMatrixError", "OrderLimitError", "UnstableApproximationError",
]


def test_top_level_contract():
    import repro

    for name in TOP_LEVEL_CONTRACT:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version_is_pep440ish():
    import re

    import repro

    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_exception_hierarchy_roots():
    from repro import errors

    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError), name


def test_paper_circuit_constructors_are_pure():
    """Calling a constructor twice yields independent equal circuits."""
    from repro.papercircuits import fig16_stiff_rc_tree

    a, b = fig16_stiff_rc_tree(), fig16_stiff_rc_tree()
    assert a is not b
    a.set_initial_voltage("C6", 1.0)
    assert b["C6"].initial_voltage is None


def test_cli_parser_builds():
    from repro.cli import build_parser

    parser = build_parser()
    commands = {"report", "poles", "simulate", "sensitivity", "serve",
                "analyze", "gateway", "loadgen"}
    # argparse stores subparsers internally; probing via parse of --help
    # would exit, so check the registered choices directly.
    subparsers = next(
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    assert commands <= set(subparsers.choices)
