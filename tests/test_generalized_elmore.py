"""Tests for the eq. 3 generalized Elmore delay (grounded resistors,
nonequilibrium initial conditions)."""

import numpy as np
import pytest

from repro import Circuit, DC, Step, simulate
from repro.errors import AnalysisError
from repro.papercircuits import (
    fig16_stiff_rc_tree,
    fig4_rc_tree,
    fig9_grounded_resistor,
    rc_mesh,
)
from repro.rctree import (
    elmore_delays,
    generalized_elmore_delay,
    settling_areas,
)


class TestReducesToElmore:
    def test_matches_tree_walk_on_fig4(self):
        walk = elmore_delays(fig4_rc_tree())
        circuit = fig4_rc_tree()
        circuit.replace(circuit["Vin"])  # no-op; keeps the default 0→dc step
        for node in ("1", "2", "3", "4"):
            value = generalized_elmore_delay(
                circuit, node, source_values={"Vin": 5.0}
            )
            assert value == pytest.approx(walk[node], rel=1e-12)

    def test_supply_invariant(self):
        a = generalized_elmore_delay(fig4_rc_tree(), "4", {"Vin": 1.0})
        b = generalized_elmore_delay(fig4_rc_tree(), "4", {"Vin": 5.0})
        assert a == pytest.approx(b)


class TestGroundedResistors:
    def test_matches_numeric_area_on_fig9(self):
        # Verify eq. 3 against a numerically integrated settled area.
        circuit = fig9_grounded_resistor()
        delay = generalized_elmore_delay(circuit, "4", {"Vin": 5.0})
        result = simulate(circuit, {"Vin": Step(0, 5)}, 60.0)
        w = result.voltage("4")
        v_inf = 5.0 * 4.0 / 7.0
        numeric = np.trapezoid(v_inf - w.values, w.times) / v_inf
        assert delay == pytest.approx(numeric, rel=1e-3)

    def test_mesh_supported(self):
        delay = generalized_elmore_delay(rc_mesh(2, 2), "n1_1", {"Vin": 5.0})
        assert delay > 0


class TestChargeSharing:
    def test_nonequilibrium_ic_delay_defined(self):
        # Lin–Mead setting: nonmonotone response, still a delay number.
        circuit = fig16_stiff_rc_tree(sharing_voltage=5.0)
        delay = generalized_elmore_delay(circuit, "7", {"Vin": 5.0})
        base = generalized_elmore_delay(fig16_stiff_rc_tree(), "7", {"Vin": 5.0})
        # Pre-charged C6 helps the output along: the area delay shrinks.
        assert 0 < delay < base

    def test_pure_redistribution_rejected(self):
        # Input held at 0: node 7 starts AND ends at 0 → eq. 3 undefined.
        circuit = fig16_stiff_rc_tree(sharing_voltage=5.0)
        with pytest.raises(AnalysisError, match="no net transition"):
            generalized_elmore_delay(circuit, "7", {"Vin": 0.0},
                                     pre_source_values={"Vin": 0.0})

    def test_ground_rejected(self):
        with pytest.raises(AnalysisError):
            generalized_elmore_delay(fig4_rc_tree(), "0", {"Vin": 5.0})


class TestSettlingAreas:
    def test_area_equals_delay_times_swing(self):
        circuit = fig9_grounded_resistor()
        areas = settling_areas(circuit, {"Vin": 5.0})
        delay = generalized_elmore_delay(circuit, "4", {"Vin": 5.0})
        v_inf = 5.0 * 4.0 / 7.0
        assert areas["4"] == pytest.approx(delay * v_inf, rel=1e-12)

    def test_all_nodes_reported(self):
        areas = settling_areas(fig4_rc_tree(), {"Vin": 5.0})
        assert set(areas) == {"in", "1", "2", "3", "4"}
        assert areas["in"] == pytest.approx(0.0, abs=1e-18)
