"""Tests for MNA stamping, indexing, and floating-group detection."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem
from repro.errors import CircuitError, SingularCircuitError


class TestIndexing:
    def test_layout(self, single_rc):
        system = MnaSystem(single_rc)
        assert system.index.node_names == ("in", "1")
        assert system.index.current_elements == ("Vin",)
        assert system.dimension == 3
        assert system.index.source_names == ("Vin",)

    def test_current_index_offsets_by_nodes(self, single_rc):
        system = MnaSystem(single_rc)
        assert system.index.current("Vin") == 2

    def test_current_of_non_current_element(self, single_rc):
        system = MnaSystem(single_rc)
        with pytest.raises(CircuitError):
            system.index.current("R1")

    def test_unknown_source(self, single_rc):
        system = MnaSystem(single_rc)
        with pytest.raises(CircuitError):
            system.index.source("Vx")


class TestStamps:
    def test_resistor_stamp_symmetry(self, rc_ladder3):
        system = MnaSystem(rc_ladder3)
        n = system.index.node_count
        G_nodes = system.G[:n, :n]
        assert np.allclose(G_nodes, G_nodes.T)

    def test_conductance_values(self, single_rc):
        system = MnaSystem(single_rc)
        i, j = system.index.node("in"), system.index.node("1")
        assert system.G[i, i] == pytest.approx(1e-3)
        assert system.G[i, j] == pytest.approx(-1e-3)

    def test_capacitor_stamp(self, single_rc):
        system = MnaSystem(single_rc)
        j = system.index.node("1")
        assert system.C[j, j] == pytest.approx(1e-12)

    def test_floating_capacitor_stamp(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0")
        ckt.add_resistor("R", "a", "b", 1.0)
        ckt.add_resistor("R2", "b", "0", 1.0)
        ckt.add_capacitor("Cc", "a", "b", 2e-12)
        system = MnaSystem(ckt)
        i, j = system.index.node("a"), system.index.node("b")
        assert system.C[i, i] == pytest.approx(2e-12)
        assert system.C[i, j] == pytest.approx(-2e-12)

    def test_inductor_branch_rows(self, series_rlc):
        system = MnaSystem(series_rlc)
        row = system.index.current("L1")
        a, b = system.index.node("a"), system.index.node("b")
        assert system.G[row, a] == 1.0
        assert system.G[row, b] == -1.0
        assert system.C[row, row] == pytest.approx(-10e-9)
        # KCL coupling of the branch current into the node equations.
        assert system.G[a, row] == 1.0
        assert system.G[b, row] == -1.0

    def test_voltage_source_rhs_column(self, single_rc):
        system = MnaSystem(single_rc)
        row = system.index.current("Vin")
        col = system.index.source("Vin")
        assert system.B[row, col] == 1.0

    def test_current_source_rhs(self):
        ckt = Circuit()
        ckt.add_resistor("R", "a", "0", 1.0)
        ckt.add_current_source("I1", "0", "a", 1e-3)  # pushes INTO node a
        system = MnaSystem(ckt)
        a = system.index.node("a")
        col = system.index.source("I1")
        assert system.B[a, col] == 1.0

    def test_vccs_stamp(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "c", "0", 1.0)
        ckt.add_resistor("Rc", "c", "0", 1.0)
        ckt.add_resistor("Ro", "o", "0", 1.0)
        ckt.add_vccs("G1", "o", "0", "c", "0", 5e-3)
        system = MnaSystem(ckt)
        o, c = system.index.node("o"), system.index.node("c")
        assert system.G[o, c] == pytest.approx(5e-3)


class TestSolves:
    def test_dc_solve_voltage_divider(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", 6.0)
        ckt.add_resistor("R1", "a", "b", 2.0)
        ckt.add_resistor("R2", "b", "0", 1.0)
        system = MnaSystem(ckt)
        x = system.solve_augmented(system.B @ np.array([6.0]))
        assert x[system.index.node("b")] == pytest.approx(2.0)
        # Source current: 6 V across 3 Ω, flowing out of the source node.
        assert x[system.index.current("V")] == pytest.approx(-2.0)

    def test_source_vector_by_name(self, single_rc):
        system = MnaSystem(single_rc)
        u = system.source_vector({"Vin": 5.0})
        assert u.tolist() == [5.0]

    def test_source_vector_wrong_shape(self, single_rc):
        system = MnaSystem(single_rc)
        with pytest.raises(CircuitError):
            system.source_vector(np.zeros(3))

    def test_singular_circuit_raises(self):
        # A loop of two voltage sources has no unique branch currents.
        ckt = Circuit()
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_voltage_source("V2", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        system = MnaSystem(ckt)
        with pytest.raises(SingularCircuitError):
            system.lu()

    def test_resistive_island_with_trapped_charge_is_solvable(self):
        # A conductive island reachable only through capacitors is handled
        # by charge conservation (paper Sec. III), not rejected.
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", 1.0)
        ckt.add_resistor("Ra", "a", "0", 1.0)
        ckt.add_capacitor("C1", "a", "b", 1e-12)
        ckt.add_resistor("R1", "b", "c", 1.0)
        ckt.add_capacitor("C2", "c", "0", 1e-12)
        system = MnaSystem(ckt)
        x = system.solve_augmented(system.B @ np.array([1.0]))
        b, c = system.index.node("b"), system.index.node("c")
        assert x[b] == pytest.approx(x[c])  # no current through R1 at DC


class TestSparseBackend:
    def test_sparse_matches_dense(self):
        from repro.papercircuits import random_rc_tree

        circuit = random_rc_tree(120, seed=9)
        dense = MnaSystem(circuit, sparse=False)
        sparse = MnaSystem(circuit, sparse=True)
        rhs = dense.B @ np.array([5.0])
        np.testing.assert_allclose(
            dense.solve_augmented(rhs),
            sparse.solve_augmented(rhs),
            rtol=1e-10,
            atol=1e-12,
        )

    def test_auto_selection_by_size(self, single_rc):
        from repro.papercircuits import rc_ladder

        assert not MnaSystem(single_rc).use_sparse
        assert MnaSystem(rc_ladder(200)).use_sparse

    def test_sparse_detects_singularity(self):
        ckt = Circuit()
        ckt.add_voltage_source("V1", "a", "0", 1.0)
        ckt.add_voltage_source("V2", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        system = MnaSystem(ckt, sparse=True)
        with pytest.raises(SingularCircuitError):
            system.lu()

    def test_end_to_end_awe_on_large_tree(self):
        from repro import AweAnalyzer, Step
        from repro.papercircuits import rc_ladder
        from repro.rctree import elmore_delays

        circuit = rc_ladder(400)
        analyzer = AweAnalyzer(circuit, {"Vin": Step(0, 5)})
        response = analyzer.response("400", order=1)
        elmore = elmore_delays(circuit)["400"]
        assert response.poles[0].real == pytest.approx(-1.0 / elmore, rel=1e-9)

    def test_sparse_charge_augmentation(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit, sparse=True)
        x = system.solve_augmented(
            system.B @ np.array([5.0]), charge_values=np.array([0.0])
        )
        assert x[system.index.node("f")] == pytest.approx(1.0)


class TestFloatingGroups:
    def test_detection(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        assert len(system.floating_groups) == 1
        group = system.floating_groups[0]
        assert system.index.node_names[group[0]] == "f"

    def test_no_false_positives(self, rc_ladder3):
        assert MnaSystem(rc_ladder3).floating_groups == ()

    def test_multi_node_floating_group(self):
        ckt = Circuit()
        ckt.add_voltage_source("V", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "b", 1.0)
        ckt.add_capacitor("C1", "b", "0", 1e-12)
        ckt.add_capacitor("Cc", "b", "f1", 1e-12)
        ckt.add_resistor("Rf", "f1", "f2", 1.0)  # resistor inside the island
        ckt.add_capacitor("Cf", "f2", "0", 1e-12)
        system = MnaSystem(ckt)
        assert len(system.floating_groups) == 1
        assert len(system.floating_groups[0]) == 2

    def test_charge_augmented_solve(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        # DC with 5 V input and zero trapped charge: v(f) set by charge
        # conservation on the capacitive divider: 5 * 0.5/(0.5+2).
        x = system.solve_augmented(
            system.B @ np.array([5.0]), charge_values=np.array([0.0])
        )
        assert x[system.index.node("f")] == pytest.approx(1.0)

    def test_group_charge(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        x = np.zeros(system.dimension)
        x[system.index.node("f")] = 2.0
        # Charge at f: Cc*(v_f - v_1) + Cf*v_f = 0.5p*2 + 2p*2 = 5e-12.
        assert system.group_charge(x)[0] == pytest.approx(5e-12)
