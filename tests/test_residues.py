"""Tests for residue solving, including the confluent (repeated-pole) case."""

import numpy as np
import pytest

from repro.core.residues import cluster_poles, solve_residues
from repro.errors import ApproximationError
from tests.test_pade import moments_of


def evaluate_terms(terms, t):
    import math

    t = np.asarray(t, dtype=float)
    total = np.zeros(t.shape, dtype=complex)
    for pole, power, residue in terms:
        total += residue * t ** (power - 1) * np.exp(pole * t) / math.factorial(power - 1)
    return total.real


class TestClusterPoles:
    def test_distinct_stay_separate(self):
        clusters = cluster_poles(np.array([-1e9, -2e9]))
        assert [m for _, m in clusters] == [1, 1]

    def test_near_duplicates_merge(self):
        clusters = cluster_poles(np.array([-1e9, -1e9 * (1 + 1e-12)]))
        assert clusters[0][1] == 2

    def test_conjugates_not_merged(self):
        clusters = cluster_poles(np.array([-1e9 + 2e9j, -1e9 - 2e9j]))
        assert len(clusters) == 2


class TestSimpleResidues:
    def test_recover_known_residues(self):
        poles = np.array([-1e9, -5e9])
        m = moments_of(poles, [3.0, -1.5], 1)
        terms = solve_residues(poles, m)
        residues = sorted(term[2].real for term in terms)
        assert residues == pytest.approx([-1.5, 3.0])

    def test_initial_value_matched(self):
        poles = np.array([-1e9, -5e9])
        m = moments_of(poles, [3.0, -1.5], 1)
        terms = solve_residues(poles, m)
        assert evaluate_terms(terms, np.array([0.0]))[0] == pytest.approx(m[0])

    def test_complex_pair_residues_conjugate(self):
        poles = np.array([-1e9 + 4e9j, -1e9 - 4e9j])
        m = moments_of(poles, [1 + 2j, 1 - 2j], 1)
        terms = solve_residues(poles, m)
        k1, k2 = terms[0][2], terms[1][2]
        assert k1 == pytest.approx(np.conj(k2))

    def test_too_few_moments(self):
        with pytest.raises(ApproximationError):
            solve_residues(np.array([-1e9, -2e9]), np.array([1.0]))

    def test_no_poles(self):
        with pytest.raises(ApproximationError):
            solve_residues(np.array([]), np.array([1.0]))


class TestConfluentResidues:
    def test_double_pole_fit(self):
        # Target: (2 + 3t)e^{-t}: terms k₁e^{pt} + k₂·t e^{pt}.
        p = -1.0
        # Moments: m₋₁ = 2; m_k from 2/(s−p) expansion + 3/(s−p)².
        def exact_moment(k):
            return -(2.0 * p ** -(k + 1)) + 3.0 * (k + 1) * p ** -(k + 2)

        m = np.array([2.0, exact_moment(0)])
        terms = solve_residues(np.array([p, p * (1 + 1e-12)]), m)
        powers = sorted(term[1] for term in terms)
        assert powers == [1, 2]
        t = np.linspace(0, 5, 50)
        np.testing.assert_allclose(
            evaluate_terms(terms, t), (2.0 + 3.0 * t) * np.exp(-t), rtol=1e-6, atol=1e-9
        )

    def test_confluent_moment_signs(self):
        # Verify the generalised eq. 27/29 coefficients against numerical
        # integration: m_k = (−1)^k/k! ∫ t^k y dt for y = t e^{pt}.
        p = -2.0
        terms = [(p, 2, 1.0)]
        import math

        t = np.linspace(0, 40, 400001)
        y = evaluate_terms(terms, t)
        from repro.core.residues import _moment_coefficient

        for k in range(3):
            numeric = (-1.0) ** k / math.factorial(k) * np.trapezoid(t**k * y, t)
            analytic = _moment_coefficient(p, 2, k) * 1.0
            assert numeric == pytest.approx(analytic.real, rel=1e-4)


class TestSlopeConstraint:
    def test_slope_matching_changes_initial_derivative(self):
        poles = np.array([-1e9, -5e9])
        m = moments_of(poles, [3.0, -1.5], 3)
        free = solve_residues(poles, m)
        constrained = solve_residues(poles, m, initial_slope=0.0)
        dt = 1e-15

        def slope(terms):
            v = evaluate_terms(terms, np.array([0.0, dt]))
            return (v[1] - v[0]) / dt

        assert abs(slope(constrained)) < 1e-3 * abs(slope(free))

    def test_slope_constraint_preserves_initial_value(self):
        poles = np.array([-1e9, -5e9])
        m = moments_of(poles, [3.0, -1.5], 3)
        constrained = solve_residues(poles, m, initial_slope=0.0)
        assert evaluate_terms(constrained, np.array([0.0]))[0] == pytest.approx(m[0])

    def test_slope_needs_second_order(self):
        with pytest.raises(ApproximationError, match="second-order"):
            solve_residues(np.array([-1e9]), np.array([1.0, 2.0]), initial_slope=0.0)
