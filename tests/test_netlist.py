"""Tests for the Circuit container."""

import pytest

from repro import Circuit
from repro.circuit.elements import Capacitor, Inductor, Resistor
from repro.errors import CircuitError


@pytest.fixture
def simple() -> Circuit:
    ckt = Circuit("t")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", 1e3)
    ckt.add_capacitor("C1", "1", "0", 1e-12)
    ckt.add_inductor("L1", "1", "2", 1e-9)
    return ckt


class TestContainer:
    def test_len_and_iteration(self, simple):
        assert len(simple) == 4
        assert [e.name for e in simple] == ["Vin", "R1", "C1", "L1"]

    def test_contains_and_getitem(self, simple):
        assert "R1" in simple
        assert simple["R1"].resistance == 1e3

    def test_getitem_unknown(self, simple):
        with pytest.raises(KeyError):
            simple["Rx"]

    def test_duplicate_name_rejected(self, simple):
        with pytest.raises(CircuitError):
            simple.add_resistor("R1", "a", "b", 1.0)

    def test_repr_mentions_counts(self, simple):
        assert "4 elements" in repr(simple)


class TestNodes:
    def test_ground_not_indexed(self, simple):
        assert "0" not in simple.nodes

    def test_insertion_order(self, simple):
        assert simple.nodes == ["in", "1", "2"]

    def test_node_index_stable(self, simple):
        assert simple.node_index("in") == 0
        assert simple.node_index("2") == 2

    def test_node_index_ground_rejected(self, simple):
        with pytest.raises(CircuitError):
            simple.node_index("0")

    def test_unknown_node(self, simple):
        with pytest.raises(CircuitError):
            simple.node_index("zz")

    def test_has_node(self, simple):
        assert simple.has_node("gnd")
        assert simple.has_node(1)
        assert not simple.has_node("nope")

    def test_control_nodes_registered(self):
        ckt = Circuit()
        ckt.add_vccs("G1", "a", "0", "c1", "c2", 1e-3)
        assert set(ckt.nodes) == {"a", "c1", "c2"}


class TestTypedViews:
    def test_views(self, simple):
        assert [r.name for r in simple.resistors] == ["R1"]
        assert [c.name for c in simple.capacitors] == ["C1"]
        assert [l.name for l in simple.inductors] == ["L1"]
        assert [v.name for v in simple.voltage_sources] == ["Vin"]

    def test_state_count(self, simple):
        assert simple.state_count == 2

    def test_current_variable_elements(self, simple):
        assert [e.name for e in simple.current_variable_elements()] == ["Vin", "L1"]


class TestMutation:
    def test_set_initial_voltage(self, simple):
        simple.set_initial_voltage("C1", 2.0)
        assert simple["C1"].initial_voltage == 2.0

    def test_set_initial_voltage_wrong_type(self, simple):
        with pytest.raises(CircuitError):
            simple.set_initial_voltage("R1", 2.0)

    def test_set_initial_current(self, simple):
        simple.set_initial_current("L1", 1e-3)
        assert simple["L1"].initial_current == 1e-3

    def test_replace_rejects_rewiring(self, simple):
        with pytest.raises(CircuitError):
            simple.replace(Resistor("R1", "in", "2", 5.0))

    def test_replace_unknown(self, simple):
        with pytest.raises(CircuitError):
            simple.replace(Resistor("Rz", "a", "b", 5.0))

    def test_copy_is_independent(self, simple):
        dup = simple.copy("copy")
        dup.set_initial_voltage("C1", 3.0)
        assert simple["C1"].initial_voltage is None
        assert dup.title == "copy"
        assert len(dup) == len(simple)

    def test_has_initial_conditions(self, simple):
        assert not simple.has_initial_conditions()
        simple.set_initial_voltage("C1", 1.0)
        assert simple.has_initial_conditions()

    def test_extend(self):
        ckt = Circuit()
        ckt.extend([Resistor("R1", "a", "b", 1.0), Capacitor("C1", "b", "0", 1e-12)])
        assert len(ckt) == 2
