"""Tests for gradient-guided process-corner delay analysis."""

import itertools

import dataclasses

import numpy as np
import pytest

from repro.core.sensitivity import delay_sensitivities
from repro.errors import AnalysisError
from repro.papercircuits import fig4_rc_tree, fig9_grounded_resistor, random_rc_tree
from repro.timing import delay_corners, uniform_tolerances


class TestBasics:
    def test_ordering(self):
        circuit = fig4_rc_tree()
        report = delay_corners(circuit, "4", uniform_tolerances(circuit, 0.1),
                               {"Vin": 5.0})
        assert report.corner_low < report.nominal < report.corner_high
        assert report.linear_low < report.nominal < report.linear_high

    def test_linear_matches_exact_for_small_tolerance(self):
        circuit = fig4_rc_tree()
        report = delay_corners(circuit, "4", uniform_tolerances(circuit, 0.01),
                               {"Vin": 5.0})
        assert report.corner_high == pytest.approx(report.linear_high, rel=1e-3)
        assert report.corner_low == pytest.approx(report.linear_low, rel=1e-3)

    def test_tree_slow_corner_scales_everything_up(self):
        # On an RC tree every on-path gradient is ≥ 0, so the slow corner
        # has every element at +tol.
        circuit = fig4_rc_tree()
        report = delay_corners(circuit, "4", uniform_tolerances(circuit, 0.2),
                               {"Vin": 5.0})
        # Each element scaled up by 1.2 ⇒ delay scales by 1.2² = 1.44
        # exactly (T_D is bilinear in R and C).
        assert report.corner_high == pytest.approx(report.nominal * 1.44, rel=1e-9)

    def test_partial_tolerances(self):
        circuit = fig4_rc_tree()
        report = delay_corners(circuit, "4", {"R4": 0.5}, {"Vin": 5.0})
        # Only R4 varies: ΔT = ±0.5·R4·C4.
        assert report.corner_high - report.nominal == pytest.approx(
            0.5 * 1e3 * 0.1e-6, rel=1e-9
        )

    def test_unknown_element_rejected(self):
        with pytest.raises(AnalysisError, match="unknown"):
            delay_corners(fig4_rc_tree(), "4", {"Rxx": 0.1}, {"Vin": 5.0})

    def test_bad_tolerance_rejected(self):
        with pytest.raises(AnalysisError):
            delay_corners(fig4_rc_tree(), "4", {"R1": 1.5}, {"Vin": 5.0})


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_gradient_corner_is_the_true_extreme(self, seed):
        """Enumerate all 2^n corners of a small net: the gradient-built
        corner must be the global extreme (monotonicity of the first
        moment in each element)."""
        circuit = random_rc_tree(3, seed=seed)
        node = circuit.nodes[-1]
        names = [e.name for e in circuit if hasattr(e, "resistance")]
        names += [e.name for e in circuit.capacitors]
        tol = 0.3
        report = delay_corners(circuit, node, {n: tol for n in names}, {"Vin": 1.0})

        delays = []
        for signs in itertools.product((-1, 1), repeat=len(names)):
            corner = circuit.copy()
            for name, sign in zip(names, signs):
                element = corner[name]
                if hasattr(element, "resistance"):
                    corner.replace(dataclasses.replace(
                        element, resistance=element.resistance * (1 + sign * tol)))
                else:
                    corner.replace(dataclasses.replace(
                        element, capacitance=element.capacitance * (1 + sign * tol)))
            delays.append(
                delay_sensitivities(corner, node, {"Vin": 1.0}).elmore_delay
            )
        assert report.corner_high == pytest.approx(max(delays), rel=1e-9)
        assert report.corner_low == pytest.approx(min(delays), rel=1e-9)

    def test_grounded_resistor_mixed_gradient(self):
        """Fig. 9's R5 *reduces* the delay scale; its slow-corner direction
        is therefore downward — the gradient handles the sign flip the
        uniform 'everything up' heuristic would get wrong."""
        circuit = fig9_grounded_resistor()
        sens = delay_sensitivities(circuit, "4", {"Vin": 5.0})
        assert sens.d_resistance["R5"] != 0.0
        report = delay_corners(circuit, "4", uniform_tolerances(circuit, 0.1),
                               {"Vin": 5.0})
        slow_r5 = report.slow_corner["R5"].resistance
        if sens.d_resistance["R5"] > 0:
            assert slow_r5 > 4.0
        else:
            assert slow_r5 < 4.0
        # And the exact corner spread brackets the nominal.
        assert report.corner_low < report.nominal < report.corner_high
