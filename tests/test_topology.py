"""Tests for RC-tree recognition and tree/link partitioning."""

import pytest

from repro import Circuit
from repro.circuit.elements import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.circuit.topology import analyze_rc_tree, is_rc_tree, tree_link_partition
from repro.errors import TopologyError
from repro.papercircuits import fig4_rc_tree, fig9_grounded_resistor, rc_mesh


class TestAnalyzeRcTree:
    def test_fig4_is_rc_tree(self):
        tree = analyze_rc_tree(fig4_rc_tree())
        assert tree.root == "in"
        assert set(tree.nodes) == {"in", "1", "2", "3", "4"}

    def test_parent_structure(self):
        tree = analyze_rc_tree(fig4_rc_tree())
        parent, resistor = tree.parent["4"]
        assert parent == "3"
        assert resistor.name == "R4"

    def test_capacitance_map(self):
        tree = analyze_rc_tree(fig4_rc_tree())
        assert tree.capacitance["4"] == pytest.approx(0.1e-6)
        assert tree.capacitance["in"] == 0.0

    def test_path_to_root(self):
        tree = analyze_rc_tree(fig4_rc_tree())
        names = [r.name for _, r in tree.path_to_root("4")]
        assert names == ["R4", "R3", "R1"]

    def test_path_nodes(self):
        tree = analyze_rc_tree(fig4_rc_tree())
        assert tree.path_nodes("4") == ["in", "1", "3", "4"]

    def test_shared_path_resistance(self):
        tree = analyze_rc_tree(fig4_rc_tree())
        # nodes 2 and 4 share only R1.
        assert tree.path_resistance("2", "4") == pytest.approx(1e3)
        # nodes 3 and 4 share R1+R3.
        assert tree.path_resistance("4", "3") == pytest.approx(2e3)

    def test_grounded_resistor_rejected(self):
        with pytest.raises(TopologyError, match="to ground"):
            analyze_rc_tree(fig9_grounded_resistor())

    def test_floating_cap_rejected(self):
        ckt = fig4_rc_tree()
        ckt.add_capacitor("Cf", "2", "4", 1e-12)
        with pytest.raises(TopologyError, match="[Ff]loating"):
            analyze_rc_tree(ckt)

    def test_resistor_loop_rejected(self):
        ckt = fig4_rc_tree()
        ckt.add_resistor("Rloop", "2", "4", 1e3)
        with pytest.raises(TopologyError):
            analyze_rc_tree(ckt)

    def test_inductor_rejected(self):
        ckt = fig4_rc_tree()
        ckt.add_inductor("L1", "4", "5", 1e-9)
        with pytest.raises(TopologyError):
            analyze_rc_tree(ckt)

    def test_two_sources_rejected(self):
        ckt = fig4_rc_tree()
        ckt.add_voltage_source("V2", "2", "0")
        with pytest.raises(TopologyError, match="exactly one source"):
            analyze_rc_tree(ckt)

    def test_mesh_is_not_tree(self):
        assert not is_rc_tree(rc_mesh(2, 2))

    def test_is_rc_tree_predicate(self):
        assert is_rc_tree(fig4_rc_tree())


class TestTreeLinkPartition:
    def test_rc_tree_links_are_capacitors(self):
        partition = tree_link_partition(fig4_rc_tree())
        assert partition.explicit_dc
        assert all(isinstance(link, Capacitor) for link in partition.links)
        assert len(partition.links) == 4

    def test_grounded_resistor_forces_resistive_link(self):
        partition = tree_link_partition(fig9_grounded_resistor())
        resistive_links = [l for l in partition.links if isinstance(l, Resistor)]
        assert len(resistive_links) == 1
        assert not partition.explicit_dc

    def test_tree_spans_all_elements(self):
        ckt = fig4_rc_tree()
        partition = tree_link_partition(ckt)
        assert len(partition.tree) + len(partition.links) == len(ckt)

    def test_source_always_in_tree(self):
        partition = tree_link_partition(fig9_grounded_resistor())
        tree_names = {e.name for e in partition.tree}
        assert "Vin" in tree_names

    def test_mesh_has_resistor_links(self):
        partition = tree_link_partition(rc_mesh(2, 2))
        assert any(isinstance(l, Resistor) for l in partition.links)
