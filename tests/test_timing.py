"""Tests for the timing application layer: delay reports, stages, paths."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.timing import (
    PathTimingAnalyzer,
    Receiver,
    Stage,
    measure_delay,
    slew_time,
)
from repro.waveform import Waveform


def exp_rise(tau=1e-9, v=5.0):
    t = np.linspace(0, 10e-9, 4001)
    return Waveform(t, v * (1 - np.exp(-t / tau)), "v(out)")


class TestMeasureDelay:
    def test_delay_50(self):
        report = measure_delay(exp_rise())
        assert report.delay_50 == pytest.approx(1e-9 * np.log(2), rel=1e-3)

    def test_threshold(self):
        report = measure_delay(exp_rise(), threshold=4.0)
        assert report.threshold_delay == pytest.approx(-1e-9 * np.log(0.2), rel=1e-3)

    def test_slew(self):
        report = measure_delay(exp_rise())
        assert report.slew_10_90 == pytest.approx(1e-9 * np.log(9), rel=1e-3)
        assert slew_time(exp_rise()) == report.slew_10_90

    def test_monotone_flag(self):
        assert measure_delay(exp_rise()).monotone

    def test_v_final_override(self):
        t = np.linspace(0, 3e-9, 601)  # crosses 50 % but far from settled
        w = Waveform(t, 5.0 * (1 - np.exp(-t / 1e-9)))
        report = measure_delay(w, v_final=5.0)
        assert report.v_final == 5.0
        assert report.delay_50 == pytest.approx(1e-9 * np.log(2), rel=1e-2)

    def test_no_transition(self):
        t = np.linspace(0, 1, 10)
        with pytest.raises(AnalysisError):
            measure_delay(Waveform(t, np.ones(10)))

    def test_swing(self):
        assert measure_delay(exp_rise()).swing == pytest.approx(5.0, rel=1e-3)


def simple_net(ckt):
    ckt.add_resistor("Rw", "drv", "s1", 500.0)
    ckt.add_capacitor("Cw", "s1", "0", 20e-15)


def branched_net(ckt):
    ckt.add_resistor("Rw1", "drv", "s1", 300.0)
    ckt.add_resistor("Rw2", "drv", "s2", 600.0)


class TestStage:
    def test_builds_circuit_with_loads(self):
        stage = Stage("g", 1e3, simple_net, [Receiver("s1", 30e-15)])
        circuit = stage.build_circuit()
        assert "Cin_s1" in circuit
        assert "Rdrv" in circuit

    def test_missing_receiver_node(self):
        stage = Stage("g", 1e3, simple_net, [Receiver("nowhere", 1e-15)])
        with pytest.raises(AnalysisError, match="never connects"):
            stage.build_circuit()

    def test_no_receivers(self):
        stage = Stage("g", 1e3, simple_net, [])
        with pytest.raises(AnalysisError):
            stage.build_circuit()

    def test_evaluate_step_delay_matches_elmore_scale(self):
        stage = Stage("g", 1e3, simple_net, [Receiver("s1", 30e-15)])
        result = stage.evaluate()
        # Elmore: 1k*(20f+30f) + 500*(30f)... plus 20f at s1's own node:
        elmore = 1e3 * 50e-15 + 500 * 30e-15
        delay = result.delay("s1")
        assert 0.3 * elmore < delay < 2.0 * elmore

    def test_slew_propagation_slows_delay(self):
        stage = Stage("g", 1e3, simple_net, [Receiver("s1", 30e-15)])
        fast = stage.evaluate(input_slew=0.0).delay("s1")
        slow = stage.evaluate(input_slew=2e-9).delay("s1")
        assert slow > fast

    def test_falling_transition(self):
        stage = Stage("g", 1e3, simple_net, [Receiver("s1", 30e-15)],
                      rising=False)
        result = stage.evaluate()
        report = result.reports["s1"]
        assert report.v_final == pytest.approx(0.0, abs=1e-6)
        assert report.threshold_delay is not None

    def test_multiple_receivers_worst_delay(self):
        stage = Stage("g", 1e3, branched_net,
                      [Receiver("s1", 30e-15), Receiver("s2", 30e-15)])
        result = stage.evaluate()
        assert result.worst_delay == result.delay("s2")  # larger wire R

    def test_event_time_offsets_delay(self):
        stage = Stage("g", 1e3, simple_net, [Receiver("s1", 30e-15)])
        base = stage.evaluate().delay("s1")
        offset = stage.evaluate(input_event_time=1e-9).delay("s1")
        assert offset == pytest.approx(base + 1e-9, rel=1e-6)


class TestPathAnalyzer:
    def make_path(self):
        s1 = Stage("g1", 1e3, simple_net, [Receiver("s1", 30e-15)])
        s2 = Stage("g2", 2e3, simple_net, [Receiver("s1", 40e-15)])
        return PathTimingAnalyzer([(s1, "s1"), (s2, "s1")])

    def test_stage_times_accumulate(self):
        timings = self.make_path().analyze()
        assert timings[1].input_event_time == timings[0].output_event_time
        assert timings[1].output_event_time > timings[1].input_event_time

    def test_slew_propagates(self):
        timings = self.make_path().analyze()
        assert timings[1].input_slew == timings[0].output_slew
        assert timings[0].output_slew > 0

    def test_path_delay(self):
        analyzer = self.make_path()
        timings = analyzer.analyze()
        assert analyzer.path_delay() == pytest.approx(timings[-1].output_event_time)

    def test_empty_path_rejected(self):
        with pytest.raises(AnalysisError):
            PathTimingAnalyzer([])

    def test_unknown_sink_rejected(self):
        stage = Stage("g", 1e3, simple_net, [Receiver("s1", 1e-15)])
        with pytest.raises(AnalysisError):
            PathTimingAnalyzer([(stage, "sX")])

    def test_start_time_offset(self):
        analyzer = self.make_path()
        base = analyzer.path_delay()
        assert analyzer.path_delay(start_time=1e-9) == pytest.approx(base, rel=1e-3)
