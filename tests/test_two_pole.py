"""Tests for the standalone two-pole (Chu–Horowitz style) model."""

import numpy as np
import pytest

from repro import AweAnalyzer, Step, simulate
from repro.errors import ApproximationError
from repro.papercircuits import fig16_stiff_rc_tree, fig4_rc_tree, random_rc_tree
from repro.rctree import two_pole_model


class TestAgainstAwe:
    @pytest.mark.parametrize("seed", [3, 9])
    def test_matches_second_order_awe(self, seed):
        # The module's reason to exist: the closed-form quadratic path must
        # agree with the general Padé machinery at q = 2.
        circuit = random_rc_tree(8, seed=seed)
        node = circuit.nodes[-1]
        model = two_pole_model(circuit, node, 5.0)
        response = AweAnalyzer(circuit, {"Vin": Step(0, 5)}).response(node, order=2)
        np.testing.assert_allclose(
            np.sort(np.array(model.poles).real),
            np.sort(response.poles.real),
            rtol=1e-6,
        )

    def test_fig16_poles(self):
        model = two_pole_model(fig16_stiff_rc_tree(), "7", 5.0)
        dominant = min(model.poles, key=abs)
        assert dominant.real == pytest.approx(-1.7818e9, rel=5e-3)


class TestWaveform:
    def test_tracks_transient(self):
        circuit = fig4_rc_tree()
        model = two_pole_model(circuit, "4", 5.0)
        reference = simulate(circuit, {"Vin": Step(0, 5)}, 6e-3).voltage("4")
        candidate = model.evaluate(reference.times)
        assert np.abs(candidate - reference.values).max() < 0.05 * 5

    def test_final_value(self):
        model = two_pole_model(fig4_rc_tree(), "4", 5.0)
        assert model.v_final == pytest.approx(5.0)

    def test_initial_value_matched(self):
        model = two_pole_model(fig4_rc_tree(), "4", 5.0)
        assert model.evaluate(np.array([0.0]))[0] == pytest.approx(0.0, abs=1e-9)

    def test_stability_flag(self):
        model = two_pole_model(fig4_rc_tree(), "4", 5.0)
        assert model.is_stable

    def test_to_waveform(self):
        model = two_pole_model(fig4_rc_tree(), "4", 5.0)
        w = model.to_waveform(np.linspace(0, 6e-3, 64))
        assert "2-pole" in w.name


class TestFailures:
    def test_first_order_circuit_rejected(self, single_rc):
        with pytest.raises(ApproximationError, match="first-order"):
            two_pole_model(single_rc, "1", 5.0)

    def test_no_source(self):
        from repro import Circuit

        ckt = Circuit()
        ckt.add_resistor("R", "a", "0", 1.0)
        ckt.add_capacitor("C", "a", "0", 1e-12)
        ckt.add_capacitor("C2", "a", "b", 1e-12)
        ckt.add_resistor("R2", "b", "0", 1.0)
        with pytest.raises(ApproximationError, match="no source"):
            two_pole_model(ckt, "a", 5.0)
