"""Tests for whole-circuit structural validation."""

import pytest

from repro import Circuit
from repro.circuit.validation import validate_for_analysis
from repro.errors import CircuitError, SingularCircuitError, TopologyError


def test_empty_circuit_rejected():
    with pytest.raises(CircuitError, match="empty"):
        validate_for_analysis(Circuit())


def test_no_ground_rejected():
    ckt = Circuit()
    ckt.add_resistor("R1", "a", "b", 1.0)
    ckt.add_capacitor("C1", "b", "c", 1e-12)
    with pytest.raises(TopologyError, match="ground"):
        validate_for_analysis(ckt)


def test_healthy_circuit_passes(single_rc):
    validate_for_analysis(single_rc)


def test_voltage_source_loop_rejected():
    ckt = Circuit()
    ckt.add_voltage_source("V1", "a", "0", 5.0)
    ckt.add_voltage_source("V2", "a", "0", 5.0)
    with pytest.raises(SingularCircuitError, match="loop"):
        validate_for_analysis(ckt)


def test_inductor_voltage_source_loop_rejected():
    # An inductor directly across a voltage source shorts it at DC.
    ckt = Circuit()
    ckt.add_voltage_source("V1", "a", "0", 5.0)
    ckt.add_inductor("L1", "a", "0", 1e-9)
    with pytest.raises(SingularCircuitError, match="loop"):
        validate_for_analysis(ckt)


def test_inductor_loop_rejected():
    ckt = Circuit()
    ckt.add_voltage_source("V1", "a", "0", 5.0)
    ckt.add_resistor("R1", "a", "b", 1.0)
    ckt.add_inductor("L1", "b", "c", 1e-9)
    ckt.add_inductor("L2", "b", "c", 2e-9)
    with pytest.raises(SingularCircuitError):
        validate_for_analysis(ckt)


def test_current_source_only_node_rejected():
    ckt = Circuit()
    ckt.add_voltage_source("V1", "a", "0", 5.0)
    ckt.add_current_source("I1", "a", "x", 1e-3)
    with pytest.raises(SingularCircuitError, match="current sources"):
        validate_for_analysis(ckt)


def test_controlled_source_unknown_controller():
    ckt = Circuit()
    ckt.add_voltage_source("V1", "a", "0", 5.0)
    ckt.add_resistor("R1", "a", "b", 1.0)
    ckt.add_cccs("F1", "b", "0", "Vxx", 2.0)
    with pytest.raises(CircuitError, match="nonexistent"):
        validate_for_analysis(ckt)


def test_controlled_source_controller_without_current():
    ckt = Circuit()
    ckt.add_voltage_source("V1", "a", "0", 5.0)
    ckt.add_resistor("R1", "a", "b", 1.0)
    ckt.add_cccs("F1", "b", "0", "R1", 2.0)
    with pytest.raises(CircuitError, match="carries"):
        validate_for_analysis(ckt)


def test_floating_capacitive_node_allowed(floating_node_circuit):
    # Floating nodes are handled by charge conservation, not rejected.
    validate_for_analysis(floating_node_circuit)


def test_vcvs_loop_detected():
    ckt = Circuit()
    ckt.add_voltage_source("V1", "a", "0", 5.0)
    ckt.add_resistor("R1", "a", "b", 1.0)
    ckt.add_vcvs("E1", "a", "0", "b", "0", 2.0)
    with pytest.raises(SingularCircuitError):
        validate_for_analysis(ckt)
