"""Tests for the AWE driver: decomposition, order selection, accuracy.

Every accuracy assertion compares against the exact modal solution or the
converged transient simulator — the same cross-check discipline the paper
applies against SPICE.
"""

import numpy as np
import pytest

from repro import AweAnalyzer, Circuit, awe_response, simulate
from repro.analysis.sources import DC, PWL, Pulse, Ramp, Step
from repro.errors import (
    ApproximationError,
    OrderLimitError,
    ReproError,
)
from repro.waveform import l2_error


def transient_reference(circuit, stimuli, t_stop, node):
    return simulate(circuit, stimuli, t_stop).voltage(node)


class TestFirstOrderEquivalence:
    def test_single_rc_is_exact(self, single_rc):
        response = awe_response(single_rc, {"Vin": Step(0, 5)}, "1", order=1)
        t = np.linspace(0, 5e-9, 64)
        np.testing.assert_allclose(
            response.waveform.evaluate(t), 5 * (1 - np.exp(-t / 1e-9)), rtol=1e-9
        )

    def test_pole_is_reciprocal_elmore(self, rc_ladder3):
        response = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=1)
        elmore = 1e3 * (3 + 2 + 1) * 1e-12
        assert response.poles[0].real == pytest.approx(-1 / elmore)

    def test_delay_50(self, single_rc):
        response = awe_response(single_rc, {"Vin": Step(0, 5)}, "1", order=1)
        assert response.delay_50() == pytest.approx(1e-9 * np.log(2), rel=1e-3)

    def test_threshold_delay(self, single_rc):
        response = awe_response(single_rc, {"Vin": Step(0, 5)}, "1", order=1)
        assert response.delay(4.0) == pytest.approx(-1e-9 * np.log(0.2), rel=1e-3)


class TestOrderBehaviour:
    def test_full_order_recovers_exact_poles(self, rc_ladder3):
        from repro import MnaSystem, circuit_poles

        response = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=3)
        exact = circuit_poles(MnaSystem(rc_ladder3)).poles
        np.testing.assert_allclose(
            np.sort(response.poles.real), np.sort(exact.real), rtol=1e-6
        )

    def test_error_estimate_decreases_with_order(self, rc_ladder3):
        analyzer = AweAnalyzer(rc_ladder3, {"Vin": Step(0, 5)})
        e1 = analyzer.response("3", order=1).error_estimate
        e2 = analyzer.response("3", order=2).error_estimate
        assert e2 < e1

    def test_auto_order_meets_target(self, rc_ladder3):
        analyzer = AweAnalyzer(rc_ladder3, {"Vin": Step(0, 5)})
        response = analyzer.response("3", error_target=0.005)
        assert response.error_estimate <= 0.005

    def test_auto_order_skips_unstable(self, charge_share_pair):
        # The nonmonotone charge-sharing response needs q >= 2.
        analyzer = AweAnalyzer(charge_share_pair, {"Vin": DC(0.0)})
        response = analyzer.response("1", error_target=0.01)
        assert response.order >= 2
        assert response.waveform.is_stable

    def test_fixed_order_collapses_when_overspecified(self, single_rc):
        response = awe_response(single_rc, {"Vin": Step(0, 5)}, "1", order=4)
        assert response.order == 1  # single pole circuit

    def test_order_limit_error(self, charge_share_pair):
        analyzer = AweAnalyzer(charge_share_pair, {"Vin": DC(0.0)}, max_order=1)
        with pytest.raises(OrderLimitError):
            analyzer.response("1", error_target=1e-6)

    def test_error_estimate_zero_at_exact_order(self, rc_ladder3):
        response = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=3)
        assert response.error_estimate == pytest.approx(0.0, abs=1e-9)

    def test_unverifiable_orders_fall_back_not_accept(self):
        # A magnetically coupled pair: intermediate (q+1) references go
        # unstable / ill-conditioned, so several orders are unverifiable.
        # The escalation must not blindly accept the first such order; it
        # returns a stable fallback (with estimate None) or a verified one.
        from repro.papercircuits import magnetically_coupled_lines
        from repro.analysis.sources import Ramp

        circuit = magnetically_coupled_lines(3, inductive_k=0.35)
        analyzer = AweAnalyzer(circuit, {"Vagg": Ramp(0, 3.3, rise_time=0.3e-9)},
                               max_order=10)
        response = analyzer.response("v3", error_target=0.05)
        assert response.waveform.is_stable
        # The picked order is beyond the first stable one (q=1 is stable
        # on this circuit but unverified; escalation kept going).
        assert response.order > 1

    def test_exactness_claim_needs_roundoff_level_reproduction(self, rc_ladder3):
        # Genuinely exact order (3-pole circuit at q=3): estimate 0 even
        # under the tight reproduction tolerance.
        response = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=3)
        assert response.error_estimate == 0.0


class TestAccuracyAgainstTransient:
    # Order 3 is exact for a 3-pole circuit; the floor is the transient
    # reference's own convergence tolerance, not AWE.
    @pytest.mark.parametrize("order,tolerance", [(1, 0.15), (2, 0.02), (3, 1e-3)])
    def test_ladder_step(self, rc_ladder3, order, tolerance):
        reference = transient_reference(rc_ladder3, {"Vin": Step(0, 5)}, 2e-8, "3")
        response = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=order)
        assert l2_error(reference, response.waveform.to_waveform(reference.times)) < tolerance

    def test_ramp_input(self, rc_ladder3):
        stimuli = {"Vin": Ramp(0, 5, rise_time=2e-9)}
        reference = transient_reference(rc_ladder3, stimuli, 2e-8, "3")
        response = awe_response(rc_ladder3, stimuli, "3", order=2)
        assert l2_error(reference, response.waveform.to_waveform(reference.times)) < 0.02

    def test_pulse_input(self, rc_ladder3):
        stimuli = {"Vin": Pulse(0, 5, delay=0, rise=1e-9, width=4e-9, fall=1e-9)}
        reference = transient_reference(rc_ladder3, stimuli, 2.5e-8, "3")
        response = awe_response(rc_ladder3, stimuli, "3", order=3)
        candidate = response.waveform.to_waveform(reference.times)
        assert np.abs(candidate.values - reference.values).max() < 0.02 * 5

    def test_pwl_input(self, rc_ladder3):
        stimuli = {"Vin": PWL([(0, 0), (1e-9, 3), (3e-9, 3), (4e-9, 5)])}
        reference = transient_reference(rc_ladder3, stimuli, 2.5e-8, "3")
        response = awe_response(rc_ladder3, stimuli, "3", order=3)
        candidate = response.waveform.to_waveform(reference.times)
        assert np.abs(candidate.values - reference.values).max() < 0.02 * 5

    def test_nonequilibrium_ic(self, charge_share_pair):
        reference = transient_reference(charge_share_pair, {"Vin": DC(0.0)}, 1.5e-8, "1")
        response = awe_response(charge_share_pair, {"Vin": DC(0.0)}, "1", order=2)
        candidate = response.waveform.to_waveform(reference.times)
        assert np.abs(candidate.values - reference.values).max() < 1e-3

    def test_rlc_complex_poles(self, series_rlc):
        reference = transient_reference(series_rlc, {"Vin": Step(0, 5)}, 3e-8, "b")
        response = awe_response(series_rlc, {"Vin": Step(0, 5)}, "b", order=2)
        candidate = response.waveform.to_waveform(reference.times)
        assert np.abs(candidate.values - reference.values).max() < 5e-3

    def test_inductor_initial_current(self, series_rlc):
        series_rlc.set_initial_current("L1", 5e-3)
        series_rlc.set_initial_voltage("C1", 0.0)
        # Many ringing periods make pointwise 1e-4 convergence expensive;
        # 5e-4 over a 1.2e-8 window is plenty for a 5e-3-swing check.
        reference = simulate(
            series_rlc, {"Vin": DC(0.0)}, 1.2e-8, refine_tolerance=5e-4
        ).voltage("b")
        response = awe_response(series_rlc, {"Vin": DC(0.0)}, "b", order=2)
        candidate = response.waveform.to_waveform(reference.times)
        swing = np.abs(reference.values).max()
        assert np.abs(candidate.values - reference.values).max() < 5e-3 * swing

    def test_floating_node_charge_conservation(self, floating_node_circuit):
        reference = transient_reference(
            floating_node_circuit, {"Vin": Step(0, 5)}, 2e-8, "f"
        )
        response = awe_response(floating_node_circuit, {"Vin": Step(0, 5)}, "f", order=2)
        assert response.waveform.final_value() == pytest.approx(1.0, rel=1e-9)
        candidate = response.waveform.to_waveform(reference.times)
        assert np.abs(candidate.values - reference.values).max() < 1e-3

    def test_delayed_step(self, rc_ladder3):
        stimuli = {"Vin": Step(0, 5, delay=3e-9)}
        reference = transient_reference(rc_ladder3, stimuli, 2.5e-8, "3")
        response = awe_response(rc_ladder3, stimuli, "3", order=3)
        candidate = response.waveform.to_waveform(reference.times)
        assert np.abs(candidate.values - reference.values).max() < 1e-3
        # Nothing happens before the event.
        assert abs(float(response.waveform.evaluate(1e-9))) < 1e-9


class TestStabilize:
    def build_unstable_case(self):
        from repro.papercircuits import magnetically_coupled_lines

        circuit = magnetically_coupled_lines(4, inductive_k=0.35)
        stimuli = {"Vagg": Ramp(0, 3.3, rise_time=0.3e-9)}
        return AweAnalyzer(circuit, stimuli, max_order=12), circuit

    def test_partial_pade_recovers_evaluable_model(self):
        analyzer, circuit = self.build_unstable_case()
        raw = analyzer.response("v4", order=4)
        assert not raw.waveform.is_stable  # the case that needs help
        fixed = analyzer.response("v4", order=4, stabilize=True)
        assert fixed.waveform.is_stable
        assert fixed.order < 4  # something was discarded
        notes = [e for c in fixed.components for e in c.escalations]
        assert any("right-half-plane" in n for n in notes)

    def test_stabilized_model_still_accurate(self):
        analyzer, circuit = self.build_unstable_case()
        fixed = analyzer.response("v4", order=4, stabilize=True)
        reference = simulate(circuit, {"Vagg": Ramp(0, 3.3, rise_time=0.3e-9)},
                             8e-9, refine_tolerance=1e-3).voltage("v4")
        candidate = fixed.waveform.to_waveform(reference.times)
        peak = np.abs(reference.values).max()
        assert np.abs(candidate.values - reference.values).max() < 0.5 * peak

    def test_stabilize_noop_on_stable_fit(self, rc_ladder3):
        plain = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=2)
        fixed = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=2,
                             stabilize=True)
        np.testing.assert_allclose(np.sort(plain.poles.real),
                                   np.sort(fixed.poles.real))


class TestSlopeMatching:
    def test_ramp_initial_slope_fixed(self, rc_ladder3):
        stimuli = {"Vin": Ramp(0, 5, rise_time=2e-9)}
        free = awe_response(rc_ladder3, stimuli, "3", order=2)
        matched = awe_response(
            rc_ladder3, stimuli, "3", order=2, match_initial_slope=True
        )
        dt = 1e-13
        slope_free = float(free.waveform.evaluate(dt) - free.waveform.evaluate(0.0)) / dt
        slope_matched = (
            float(matched.waveform.evaluate(dt) - matched.waveform.evaluate(0.0)) / dt
        )
        # The physical response starts with zero slope; matching must get
        # much closer to zero than the free fit.
        assert abs(slope_matched) < 0.2 * abs(slope_free)

    def test_slope_matching_needs_grounded_cap(self, series_rlc):
        # Node "a" has no grounded capacitor.
        with pytest.raises(ApproximationError, match="grounded capacitor"):
            awe_response(series_rlc, {"Vin": Ramp(0, 5, rise_time=1e-9)}, "a",
                         order=2, match_initial_slope=True)


class TestInterface:
    def test_ground_rejected(self, single_rc):
        with pytest.raises(ApproximationError):
            awe_response(single_rc, {}, "0", order=1)

    def test_unknown_error_method(self, single_rc):
        with pytest.raises(ReproError):
            awe_response(single_rc, {"Vin": Step(0, 5)}, "1", order=1,
                         error_method="bogus")

    def test_cauchy_error_method_runs(self, rc_ladder3):
        response = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=2,
                                error_method="cauchy")
        assert response.error_estimate is not None

    def test_subproblems_cached(self, rc_ladder3):
        analyzer = AweAnalyzer(rc_ladder3, {"Vin": Step(0, 5)})
        assert analyzer.subproblems() is analyzer.subproblems()

    def test_components_reported(self, rc_ladder3):
        response = awe_response(rc_ladder3, {"Vin": Step(0, 5)}, "3", order=2)
        assert len(response.components) == 1
        assert response.components[0].order == 2

    def test_equilibrium_start_gives_trivial_main_transient(self, rc_ladder3):
        # DC input, equilibrium ICs: the response is a flat line.
        analyzer = AweAnalyzer(rc_ladder3, {"Vin": DC(2.0)})
        response = analyzer.response("3", order=2)
        t = np.linspace(0, 1e-8, 32)
        np.testing.assert_allclose(response.waveform.evaluate(t), 2.0, rtol=1e-9)
