"""The STA metamorphic fuzz family: generation, dispatch, detection.

Mirrors ``test_conformance.py`` for the graph-case kind: cases are pure
functions of the seed, healthy code is quiet across every STA check,
kind dispatch keeps circuit and STA checks out of each other's way, and
a deliberately broken engine *is* detected (the check battery is not
vacuous)."""

import json

import pytest

import repro.conformance.sta as sta_module
from repro.conformance import (
    CHECKS,
    FuzzConfig,
    SkipCheck,
    STA_CHECKS,
    generate_case,
    generate_sta_case,
    run_check,
    run_fuzz,
)
from tests.strategies import STA_TICK


class TestGeneration:
    def test_case_is_a_pure_function_of_the_seed(self):
        for seed in (0, 3, 99, 54321):
            a, b = generate_sta_case(seed), generate_sta_case(seed)
            assert a.to_payload() == b.to_payload()
            assert a.k == b.k and a.nodes == b.nodes

    def test_structure_is_a_constrained_dag_with_dyadic_times(self):
        for seed in range(40):
            case = generate_sta_case(seed)
            case.graph.topological_order()  # must not raise: acyclic
            assert case.kind == "sta"
            assert case.arrivals and case.required
            assert 1 <= case.k <= 12
            assert case.nodes == tuple(sorted(case.required))
            for edge in case.graph.edges():
                ticks = edge.delay / STA_TICK
                assert ticks == int(ticks) and 1 <= ticks <= 4096
            for value in (*case.arrivals.values(), *case.required.values()):
                assert value / STA_TICK == int(value / STA_TICK)

    def test_sta_family_reachable_through_generate_case(self):
        cases = [generate_case(seed) for seed in range(120)]
        sta_cases = [c for c in cases if c.family == "sta"]
        assert sta_cases, "no seed in 0..119 drew the sta family"
        assert all(c.kind == "sta" for c in sta_cases)

    def test_registered_in_global_checks(self):
        for name in STA_CHECKS:
            assert CHECKS[name] is STA_CHECKS[name]


class TestDispatch:
    def test_circuit_check_skips_sta_case(self):
        with pytest.raises(SkipCheck, match="circuit"):
            run_check("roundtrip", generate_sta_case(0), FuzzConfig())

    def test_sta_check_skips_circuit_case(self):
        case = generate_case(0, family="rc_tree")
        with pytest.raises(SkipCheck, match="sta"):
            run_check("sta_top_k_oracle", case, FuzzConfig())


class TestChecksOnHealthyCode:
    @pytest.mark.parametrize("name", sorted(STA_CHECKS))
    def test_quiet_across_sixty_seeds(self, name):
        for seed in range(60):
            case = generate_sta_case(seed)
            assert run_check(name, case, FuzzConfig()) == [], (seed, name)


class TestInjectedBugDetection:
    def test_broken_top_k_is_detected(self, monkeypatch):
        # An engine that silently drops its most critical path must be
        # caught by the oracle check on essentially any seed.
        real = sta_module.report_top_k_critical_paths

        def dropping(graph, arrivals, required, k):
            return real(graph, arrivals, required, k)[1:]

        monkeypatch.setattr(sta_module, "report_top_k_critical_paths",
                            dropping)
        detected = sum(
            bool(run_check("sta_top_k_oracle", generate_sta_case(seed),
                           FuzzConfig()))
            for seed in range(10))
        assert detected == 10

    def test_scaling_check_catches_a_lossy_analyze(self, monkeypatch):
        # Corrupt analyze() results only for the alpha-scaled run (whose
        # required times are large): the scaling invariant must fire.
        real = sta_module.analyze

        def lossy(graph, arrivals, required):
            result = real(graph, arrivals, required)
            if max(required.values()) > 65536 * STA_TICK:  # the scaled run
                result.slack[next(iter(result.slack))] += STA_TICK
            return result

        monkeypatch.setattr(sta_module, "analyze", lossy)
        case = generate_sta_case(1)
        assert run_check("sta_delay_scaling", case, FuzzConfig())


class TestRunner:
    def test_sta_family_run_is_clean_and_reproducible(self):
        first = run_fuzz(range(10), family="sta")
        second = run_fuzz(range(10), family="sta")
        assert first["ok"]
        assert first["families"] == {"sta": 10}
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_mixed_seed_stream_interleaves_kinds_cleanly(self):
        report = run_fuzz(range(20))
        assert report["ok"], report["failures"]
        assert "sta" in report["families"]
        totals = report["totals"]
        assert (totals["passes"] + totals["skips"] + totals["violations"]
                + totals["crashes"]) == totals["checks"]

    def test_failure_record_carries_the_graph_payload(self, monkeypatch):
        real = sta_module.report_top_k_critical_paths
        monkeypatch.setattr(
            sta_module, "report_top_k_critical_paths",
            lambda graph, arrivals, required, k:
                real(graph, arrivals, required, k)[1:])
        report = run_fuzz(
            [0], family="sta",
            config=FuzzConfig(checks=("sta_top_k_oracle",)))
        assert not report["ok"]
        record = report["failures"][0]
        assert record["check"] == "sta_top_k_oracle"
        assert "netlist" not in record
        payload = record["graph"]
        assert payload["edges"] and payload["arrivals"] and payload["required"]
        # The record is JSON-serialisable as-is (the report contract).
        json.dumps(report, sort_keys=True)
