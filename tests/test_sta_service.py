"""Service tests for ``POST /sta``: error paths, caching, HTTP surface.

The same contract the ``/analyze`` tests pin down, at the second
endpoint: malformed or invalid designs are 400 at parse time (never
reaching a worker), deadlines are 504, a warm hit is **bit-identical**
to the cold response, and the 404 help strings advertise ``/sta``.
"""

import json

import pytest

from repro.report import validate_sta_report
from repro.service import (
    AnalysisClient,
    AnalysisService,
    ServiceError,
    ServiceServer,
    sta_request_key,
)
from repro.sta import NOMINAL, Corner, Design, default_library


def demo_design_dict(name="svc-demo", wire_r=200.0):
    return {
        "name": name,
        "inputs": [{"name": "i1", "net": "n_in", "arrival": 0.0,
                    "slew": 2e-11, "drive_resistance": 500.0}],
        "outputs": [{"name": "o1", "net": "n_out", "required": 5e-10,
                     "load": 4e-15}],
        "instances": [{"name": "u1", "cell": "INV_X1",
                       "connections": {"A": "n_in", "Y": "n_out"}}],
        "nets": [
            {"name": "n_in", "segments": []},
            {"name": "n_out", "segments": [
                {"a": "root", "b": "o1", "resistance": wire_r,
                 "capacitance": 15e-15}]},
        ],
    }


def sta_body(**overrides):
    payload = {"design": demo_design_dict()}
    payload.update(overrides)
    return json.dumps(payload).encode()


@pytest.fixture
def service():
    svc = AnalysisService(workers=1, queue_size=4).start()
    yield svc
    svc.close(timeout=60)


class TestStaSubmit:
    def test_cold_then_warm_is_bit_identical(self, service):
        status, body, headers = service.submit(sta_body(), kind="sta")
        assert status == 200, body
        assert headers["X-Repro-Cache"] == "miss"
        document = validate_sta_report(json.loads(body))
        assert document["kind"] == "sta"
        assert document["design"] == "svc-demo"

        status2, body2, headers2 = service.submit(sta_body(), kind="sta")
        assert status2 == 200
        assert headers2["X-Repro-Cache"] == "hit"
        assert body2 == body
        assert headers2["X-Repro-Key"] == headers["X-Repro-Key"]

    def test_key_matches_canon_helper(self, service):
        _, _, headers = service.submit(sta_body(k=4), kind="sta")
        design = Design.from_dict(demo_design_dict())
        assert headers["X-Repro-Key"] == sta_request_key(
            design, 4, (NOMINAL,), "awe")

    def test_invalid_json_is_400(self, service):
        status, body, _ = service.submit(b"{not json", kind="sta")
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_malformed_design_is_400(self, service):
        status, body, _ = service.submit(
            json.dumps({"design": {"name": "x"}}).encode(), kind="sta")
        assert status == 400
        assert json.loads(body)["error_type"] == "StaError"

    def test_semantically_invalid_design_is_400(self, service):
        # Structurally parseable, but the net has no sinks: caught by
        # design.validate at parse time, before any worker is involved.
        design = demo_design_dict()
        design["instances"] = []
        design["nets"] = [{"name": "n_in", "segments": []},
                          {"name": "n_out", "segments": []}]
        status, body, _ = service.submit(
            json.dumps({"design": design}).encode(), kind="sta")
        assert status == 400
        assert "n_in" in json.loads(body)["error"]

    def test_cyclic_design_is_400(self, service):
        design = {
            "name": "ring",
            "inputs": [{"name": "i1", "net": "n_in"}],
            "outputs": [{"name": "o1", "net": "n1", "required": 1e-9}],
            "instances": [
                {"name": "u1", "cell": "NAND2_X1",
                 "connections": {"A": "n_in", "B": "n2", "Y": "n1"}},
                {"name": "u2", "cell": "INV_X1",
                 "connections": {"A": "n1", "Y": "n2"}},
            ],
            "nets": [{"name": "n_in"}, {"name": "n1"}, {"name": "n2"}],
        }
        status, body, _ = service.submit(
            json.dumps({"design": design}).encode(), kind="sta")
        assert status == 400
        assert "cycle" in json.loads(body)["error"]

    def test_unknown_field_is_400(self, service):
        status, body, _ = service.submit(sta_body(vibes=1), kind="sta")
        assert status == 400
        assert "vibes" in json.loads(body)["error"]

    @pytest.mark.parametrize("overrides, fragment", [
        ({"k": -1}, "k"),
        ({"k": True}, "k"),
        ({"interconnect": "psychic"}, "interconnect"),
        ({"corners": []}, "corners"),
        ({"corners": [{"name": "a"}, {"name": "a"}]}, "unique"),
        ({"timeout": -2}, "timeout"),
    ])
    def test_bad_parameters_are_400(self, service, overrides, fragment):
        status, body, _ = service.submit(sta_body(**overrides), kind="sta")
        assert status == 400
        assert fragment in json.loads(body)["error"]

    def test_impossible_deadline_is_504(self, service):
        status, body, _ = service.submit(sta_body(timeout=1e-6), kind="sta")
        assert status == 504
        assert "budget" in json.loads(body)["error"]

    def test_custom_corners_and_library_round_trip(self, service):
        library = default_library().to_dict()
        body_bytes = sta_body(
            corners=[Corner(name="slow", wire_r=1.5, cell=1.3).to_dict()],
            library=library, interconnect="elmore", k=2)
        status, body, _ = service.submit(body_bytes, kind="sta")
        assert status == 200, body
        document = validate_sta_report(json.loads(body))
        assert [c["name"] for c in document["corners"]] == ["slow"]
        assert document["interconnect"] == "elmore"


class TestStaHttp:
    def test_client_round_trip_and_cache_hit(self):
        with ServiceServer(port=0, workers=1) as server:
            client = AnalysisClient(server.url, timeout=60)
            design = Design.from_dict(demo_design_dict())
            cold = client.sta(design, k=3)
            assert not cold.cached
            assert cold.worst_slack_s is not None
            assert cold.document["k"] == 3

            warm = client.sta(design, k=3)
            assert warm.cached
            assert warm.body == cold.body
            assert warm.key == cold.key

            metrics = client.metrics()
            assert metrics["cache_hits"] >= 1

    def test_http_400_surfaces_as_service_error(self):
        with ServiceServer(port=0, workers=1) as server:
            client = AnalysisClient(server.url, timeout=30)
            with pytest.raises(ServiceError) as excinfo:
                client.sta({"name": "broken"})
            assert excinfo.value.status == 400

    def test_404_help_strings_mention_sta(self):
        with ServiceServer(port=0, workers=1) as server:
            client = AnalysisClient(server.url, timeout=30)
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/nope")
            assert excinfo.value.status == 404
            assert "/sta" in str(excinfo.value)
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/nope", b"{}")
            assert excinfo.value.status == 404
            assert "/sta" in str(excinfo.value)
