"""Shared fixtures: canonical circuits used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Circuit


@pytest.fixture
def single_rc() -> Circuit:
    """Vin — 1 kΩ — node 1 — 1 pF: pole at −1e9, τ = 1 ns."""
    ckt = Circuit("single RC")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", 1e3)
    ckt.add_capacitor("C1", "1", "0", 1e-12)
    return ckt


@pytest.fixture
def rc_ladder3() -> Circuit:
    """Three-section uniform 1 kΩ / 1 pF ladder (three real poles)."""
    ckt = Circuit("3-section ladder")
    ckt.add_voltage_source("Vin", "in", "0")
    previous = "in"
    for i in range(1, 4):
        ckt.add_resistor(f"R{i}", previous, str(i), 1e3)
        ckt.add_capacitor(f"C{i}", str(i), "0", 1e-12)
        previous = str(i)
    return ckt


@pytest.fixture
def series_rlc() -> Circuit:
    """Underdamped series RLC: R = 10 Ω, L = 10 nH, C = 1 pF."""
    ckt = Circuit("series RLC")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "a", 10.0)
    ckt.add_inductor("L1", "a", "b", 10e-9)
    ckt.add_capacitor("C1", "b", "0", 1e-12)
    return ckt


@pytest.fixture
def charge_share_pair() -> Circuit:
    """Two caps joined by resistors; C2 pre-charged to 5 V (nonequilibrium)."""
    ckt = Circuit("charge sharing pair")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", 1e3)
    ckt.add_resistor("R2", "1", "2", 1e3)
    ckt.add_capacitor("C1", "1", "0", 1e-12)
    ckt.add_capacitor("C2", "2", "0", 1e-12, initial_voltage=5.0)
    return ckt


@pytest.fixture
def floating_node_circuit() -> Circuit:
    """A node reachable only through capacitors (charge conservation)."""
    ckt = Circuit("floating node")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", 1e3)
    ckt.add_capacitor("C1", "1", "0", 1e-12)
    ckt.add_capacitor("Cc", "1", "f", 0.5e-12)
    ckt.add_capacitor("Cf", "f", "0", 2e-12)
    return ckt


def assert_waveforms_close(reference, candidate, tolerance: float):
    """Max pointwise difference relative to the reference swing."""
    diff = np.abs(reference.values - candidate(reference.times)).max()
    swing = max(abs(reference.values.max() - reference.values.min()), 1e-30)
    assert diff <= tolerance * swing, f"waveforms differ by {diff/swing:.3g} (rel)"
