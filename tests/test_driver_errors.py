"""Dedicated tests for the driver's error paths and stabilisation.

Three paths that previously had no direct coverage:

* ``stabilize=True`` — partial Padé: right-half-plane poles from a
  fixed-order fit are discarded and the surviving residues refit;
* the trapped-charge :class:`AnalysisError` guard in
  ``homogeneous_moments`` (and its batched counterpart);
* the ramp-into-floating-group :class:`AnalysisError` in
  ``particular_solution`` — both called directly and surfaced through
  the :class:`AweAnalyzer` decomposition.
"""

import numpy as np
import pytest

from repro import AweAnalyzer, Circuit, MnaSystem, Step
from repro.analysis.sources import Ramp
from repro.core.moments import (
    homogeneous_moments,
    homogeneous_moments_batch,
    particular_solution,
    particular_solutions,
)
from repro.errors import AnalysisError, UnstableApproximationError
from repro.papercircuits import rlc_transmission_ladder


@pytest.fixture
def rhp_prone():
    """A lightly damped RLC ladder whose order-6 Padé fit at the far end
    produces right-half-plane poles (numerical artefacts of the nearly
    lossless high-frequency modes)."""
    circuit = rlc_transmission_ladder(8, r_source=1.0)
    return AweAnalyzer(circuit, {"Vin": Step(0.0, 1.0)})


class TestPartialPadeStabilize:
    def test_fixed_order_returns_unstable_without_stabilize(self, rhp_prone):
        response = rhp_prone.response("8", order=6)
        assert any(p.real >= 0.0 for p in response.poles)
        assert not response.waveform.is_stable

    def test_stabilize_discards_rhp_poles(self, rhp_prone):
        response = rhp_prone.response("8", order=6, stabilize=True)
        assert all(p.real < 0.0 for p in response.poles)
        assert response.waveform.is_stable
        # The discard is recorded in the component diagnostics, and the
        # effective order drops by the number of discarded poles.
        notes = [
            note
            for component in response.components
            for note in component.escalations
        ]
        assert any("right-half-plane" in note for note in notes)
        assert response.order < 6

    def test_stabilized_waveform_is_evaluable_and_settles(self, rhp_prone):
        response = rhp_prone.response("8", order=6, stabilize=True)
        window = response.waveform.suggested_window()
        values = response.waveform.evaluate(np.linspace(0.0, 10 * window, 400))
        assert np.all(np.isfinite(values))
        assert values[-1] == pytest.approx(response.waveform.final_value(), rel=1e-3)

    def test_all_poles_unstable_raises(self):
        """When nothing stable survives, partial Padé must refuse rather
        than return an empty model."""
        from repro.core.driver import _partial_pade
        from repro.core.model import PoleResidueModel

        model = PoleResidueModel(
            ((complex(2.0, 0.0), 1, complex(1.0, 0.0)),),
            offset=0.0, slope=0.0, t0=0.0, name="all-rhp",
        )
        with pytest.raises(UnstableApproximationError):
            _partial_pade(model, np.array([1.0, -0.5]), None)


class TestTrappedChargeGuard:
    def test_homogeneous_moments_rejects_trapped_charge(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        # A state holding the floating node at 1 V traps charge in the
        # capacitive island; the homogeneous recursion must refuse it.
        y0 = np.zeros(system.dimension)
        y0[system.index.node("f")] = 1.0
        with pytest.raises(AnalysisError, match="trapped charge"):
            homogeneous_moments(system, y0, 3)

    def test_batched_recursion_applies_same_guard(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        good = np.zeros(system.dimension)
        bad = np.zeros(system.dimension)
        bad[system.index.node("f")] = 1.0
        with pytest.raises(AnalysisError, match="trapped charge"):
            homogeneous_moments_batch(system, np.column_stack([good, bad]), 3)

    def test_chargeless_state_accepted(self, floating_node_circuit):
        system = MnaSystem(floating_node_circuit)
        # The charge-conserving release computed by the analyzer itself.
        analyzer = AweAnalyzer(floating_node_circuit, {"Vin": Step(0.0, 5.0)})
        assert analyzer.subproblems()[0].moments.count > 0


@pytest.fixture
def ramp_fed_floating() -> Circuit:
    """A current source ramping into a node group reachable only through
    capacitors: its trapped charge grows linearly, so no linear
    particular solution exists."""
    ckt = Circuit("ramp into floating group")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", 1e3)
    ckt.add_capacitor("C1", "1", "0", 1e-12)
    ckt.add_capacitor("Cc", "1", "f", 0.5e-12)
    ckt.add_capacitor("Cf", "f", "0", 2e-12)
    ckt.add_current_source("Iagg", "0", "f")
    return ckt


class TestRampIntoFloatingGroup:
    def test_particular_solution_raises(self, ramp_fed_floating):
        system = MnaSystem(ramp_fed_floating)
        u1 = np.zeros(system.index.source_count)
        u1[system.index.source("Iagg")] = 1e-3  # A/s into the island
        with pytest.raises(AnalysisError, match="floating node group"):
            particular_solution(system, np.zeros_like(u1), u1)

    def test_batched_particular_solutions_raise(self, ramp_fed_floating):
        system = MnaSystem(ramp_fed_floating)
        n = system.index.source_count
        u1s = np.zeros((n, 2))
        u1s[system.index.source("Iagg"), 1] = 1e-3
        with pytest.raises(AnalysisError, match="floating node group"):
            particular_solutions(system, np.zeros((n, 2)), u1s)

    def test_driver_surfaces_the_error(self, ramp_fed_floating):
        analyzer = AweAnalyzer(
            ramp_fed_floating,
            {"Iagg": Ramp(0.0, 1e-3, rise_time=1e-9)},
        )
        with pytest.raises(AnalysisError, match="floating node group"):
            analyzer.subproblems()

    def test_step_into_floating_group_is_fine(self, ramp_fed_floating):
        """A *step* of charge injection is also unphysical at DC, but a
        pure voltage step elsewhere is fine — the guard must only fire
        for ramp injection into the island."""
        analyzer = AweAnalyzer(ramp_fed_floating, {"Vin": Step(0.0, 5.0)})
        response = analyzer.response("f", order=2)
        assert np.isfinite(response.waveform.final_value())
