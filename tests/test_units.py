"""Tests for SPICE value parsing and engineering formatting."""

import math

import pytest

from repro.circuit.units import format_engineering, parse_value
from repro.errors import NetlistParseError


class TestParseValue:
    def test_plain_number(self):
        assert parse_value("4.7") == 4.7

    def test_scientific_notation(self):
        assert parse_value("1e-9") == 1e-9

    def test_negative(self):
        assert parse_value("-3.3") == -3.3

    def test_kilo(self):
        assert parse_value("10k") == 10_000.0

    def test_meg_is_not_milli(self):
        assert parse_value("1meg") == 1e6

    def test_milli(self):
        assert parse_value("5m") == 5e-3

    def test_micro(self):
        assert parse_value("2.5u") == pytest.approx(2.5e-6)

    def test_nano_pico_femto(self):
        assert parse_value("1n") == 1e-9
        assert parse_value("1p") == 1e-12
        assert parse_value("1f") == 1e-15

    def test_giga_tera(self):
        assert parse_value("2g") == 2e9
        assert parse_value("2t") == 2e12

    def test_unit_letters_after_suffix_ignored(self):
        assert parse_value("10kohm") == 10_000.0
        assert parse_value("5pF") == 5e-12

    def test_bare_unit_name_is_ignored(self):
        # 'ohm' starts with 'o', not a scale prefix: value passes through.
        assert parse_value("50ohm") == 50.0

    def test_case_insensitive(self):
        assert parse_value("10K") == 10_000.0
        assert parse_value("1MEG") == 1e6

    def test_passthrough_numeric_types(self):
        assert parse_value(3) == 3.0
        assert parse_value(2.5) == 2.5

    def test_leading_dot(self):
        assert parse_value(".5u") == 0.5e-6

    @pytest.mark.parametrize("bad", ["", "abc", "1.2.3", "--5", "k10"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(NetlistParseError):
            parse_value(bad)


class TestFormatEngineering:
    def test_basic_prefixes(self):
        assert format_engineering(2.2e-9, "s") == "2.2ns"
        assert format_engineering(4.7e3) == "4.7k"
        assert format_engineering(1e6, "Hz") == "1MHz"

    def test_unity_range(self):
        assert format_engineering(3.0, "V") == "3V"

    def test_zero(self):
        assert format_engineering(0.0, "V") == "0V"

    def test_negative_value(self):
        assert format_engineering(-1.5e-12, "F") == "-1.5pF"

    def test_non_finite(self):
        assert format_engineering(math.inf) == "inf"
        assert format_engineering(math.nan) == "nan"

    def test_tiny_value_falls_back_to_scientific(self):
        text = format_engineering(1e-21)
        assert "e-21" in text

    def test_digits_control(self):
        assert format_engineering(1.23456e3, digits=3) == "1.23k"

    def test_round_trip(self):
        for value in (1e-15, 3.3e-9, 4.7e3, 2.0, 9.99e11):
            formatted = format_engineering(value)
            assert parse_value(formatted.lower()) == pytest.approx(value, rel=1e-3)
