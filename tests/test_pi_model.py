"""Tests for driving-point π-models and effective capacitance."""

import numpy as np
import pytest

from repro import Circuit, MnaSystem
from repro.errors import AnalysisError
from repro.papercircuits import fig9_grounded_resistor, random_rc_tree, rc_ladder
from repro.timing import driving_point_moments, effective_capacitance, pi_model


class TestDrivingPointMoments:
    def test_single_rc_analytic(self, single_rc):
        # Y(s) = sC/(1+sRC): y = [0, C, −RC², R²C³].
        y = driving_point_moments(MnaSystem(single_rc), "Vin", 4)
        np.testing.assert_allclose(y, [0.0, 1e-12, -1e-21, 1e-30], atol=1e-32)

    def test_y0_with_grounded_resistor(self):
        system = MnaSystem(fig9_grounded_resistor())
        y = driving_point_moments(system, "Vin", 1)
        # DC path: R1 + R3 + R4 + R5 = 1+1+1+4 = 7 Ω total series... the
        # DC input conductance of the Fig. 9 net is 1/(R1+R3+R4+R5) with
        # R2's branch open (C2 blocks DC): 1/7 S.
        assert y[0] == pytest.approx(1.0 / 7.0)

    def test_y1_is_total_capacitance(self):
        circuit = random_rc_tree(10, seed=4)
        system = MnaSystem(circuit)
        y = driving_point_moments(system, "Vin", 2)
        total = sum(c.capacitance for c in circuit.capacitors)
        assert y[1] == pytest.approx(total, rel=1e-10)


class TestPiModel:
    def test_single_rc_collapses(self, single_rc):
        pi = pi_model(MnaSystem(single_rc), "Vin")
        assert pi.c_near == pytest.approx(0.0, abs=1e-20)
        assert pi.resistance == pytest.approx(1e3, rel=1e-9)
        assert pi.c_far == pytest.approx(1e-12, rel=1e-9)

    def test_total_capacitance_preserved(self):
        circuit = rc_ladder(8, resistance=200.0, capacitance=100e-15)
        pi = pi_model(MnaSystem(circuit), "Vin")
        assert pi.total_capacitance == pytest.approx(8 * 100e-15, rel=1e-9)

    def test_admittance_matches_first_three_moments(self):
        circuit = rc_ladder(6)
        system = MnaSystem(circuit)
        y = driving_point_moments(system, "Vin", 4)
        pi = pi_model(system, "Vin")
        # Differentiate Y_π numerically at s = 0 via small-s expansion.
        s = 1e3  # far below all poles
        series = y[1] * s + y[2] * s**2 + y[3] * s**3
        assert complex(pi.admittance(s)) == pytest.approx(series, rel=1e-6)

    def test_lumped_capacitor_degenerate(self):
        ckt = Circuit("lumped")
        ckt.add_voltage_source("V", "in", "0")
        ckt.add_resistor("Rs", "in", "drv", 100.0)
        ckt.add_capacitor("CL", "drv", "0", 1e-12)
        # Driving point from the internal node: build source AT the load.
        ckt2 = Circuit("pure cap")
        ckt2.add_voltage_source("V", "p", "0")
        ckt2.add_capacitor("CL", "p", "0", 1e-12)
        ckt2.add_resistor("Rbig", "p", "0", 1e12)  # keep DC well-posed
        pi = pi_model(MnaSystem(ckt2), "V")
        assert pi.total_capacitance == pytest.approx(1e-12, rel=1e-6)

    def test_physical_pi_for_random_trees(self):
        for seed in (1, 2, 3):
            circuit = random_rc_tree(12, seed=seed)
            pi = pi_model(MnaSystem(circuit), "Vin")
            assert pi.c_near >= 0 and pi.c_far > 0 and pi.resistance > 0


class TestEffectiveCapacitance:
    @pytest.fixture
    def ladder_pi(self):
        circuit = rc_ladder(8, resistance=200.0, capacitance=100e-15)
        return pi_model(MnaSystem(circuit), "Vin")

    def test_bounded_by_near_and_total(self, ladder_pi):
        ceff = effective_capacitance(ladder_pi, driver_resistance=1e3)
        assert ladder_pi.c_near < ceff < ladder_pi.total_capacitance

    def test_slow_driver_sees_total(self, ladder_pi):
        ceff = effective_capacitance(ladder_pi, driver_resistance=50e3)
        assert ceff > 0.95 * ladder_pi.total_capacitance

    def test_fast_driver_is_shielded(self, ladder_pi):
        fast = effective_capacitance(ladder_pi, driver_resistance=50.0)
        slow = effective_capacitance(ladder_pi, driver_resistance=5e3)
        assert fast < 0.3 * ladder_pi.total_capacitance
        assert fast < slow

    def test_slower_edge_raises_ceff(self, ladder_pi):
        step = effective_capacitance(ladder_pi, driver_resistance=1e3)
        slow_edge = effective_capacitance(
            ladder_pi, driver_resistance=1e3, rise_time=2e-9
        )
        assert slow_edge > step

    def test_delay_equivalence_holds(self, ladder_pi):
        # The defining property: driver + Ceff crosses 50 % when the
        # driver + pi does.
        from repro.timing.pi_model import _delay_50_with_load

        rd = 1e3
        ceff = effective_capacitance(ladder_pi, rd, tolerance=1e-4)
        target = _delay_50_with_load(rd, ladder_pi.as_circuit(rd), None, 5.0)
        ckt = Circuit("check")
        ckt.add_voltage_source("Vdrv", "in", "0")
        ckt.add_resistor("Rdrv", "in", "drv", rd)
        ckt.add_capacitor("Ceff", "drv", "0", ceff)
        got = _delay_50_with_load(rd, ckt, None, 5.0)
        assert got == pytest.approx(target, rel=2e-3)
