"""Tests for Hankel moment matching and pole extraction (paper eqs. 24–25)."""

import numpy as np
import pytest

from repro.core.pade import (
    characteristic_polynomial,
    choose_scale,
    hankel_sequence,
    match_poles,
    poles_from_characteristic,
    scale_moments,
)
from repro.errors import MomentMatrixError


def moments_of(poles, residues, count):
    """Physical moment sequence [m₋₁, m₀, …] of Σ kᵢ e^{pᵢ t}."""
    poles = np.asarray(poles, dtype=complex)
    residues = np.asarray(residues, dtype=complex)
    sequence = [np.sum(residues).real]
    for k in range(count):
        sequence.append((-np.sum(residues / poles ** (k + 1))).real)
    return np.array(sequence)


class TestExactRecovery:
    def test_single_pole(self):
        m = moments_of([-2.0e9], [3.0], 1)
        result = match_poles(m, 1)
        assert result.poles[0] == pytest.approx(-2.0e9)

    def test_two_real_poles(self):
        m = moments_of([-1e9, -7e9], [2.0, -1.0], 3)
        result = match_poles(m, 2)
        np.testing.assert_allclose(
            np.sort(result.poles.real), [-7e9, -1e9], rtol=1e-8
        )

    def test_complex_pair(self):
        poles = [-1e9 + 5e9j, -1e9 - 5e9j]
        m = moments_of(poles, [1 + 2j, 1 - 2j], 3)
        result = match_poles(m, 2)
        assert sorted(result.poles.imag) == pytest.approx([-5e9, 5e9], rel=1e-8)

    def test_four_poles_mixed(self):
        poles = [-1e9, -3e9 + 4e9j, -3e9 - 4e9j, -2e10]
        residues = [5.0, 1 - 1j, 1 + 1j, -0.5]
        m = moments_of(poles, residues, 7)
        result = match_poles(m, 4)
        np.testing.assert_allclose(
            np.sort_complex(result.poles), np.sort_complex(np.array(poles)), rtol=1e-6
        )

    def test_dominant_first_ordering(self):
        m = moments_of([-1e9, -7e9], [2.0, -1.0], 3)
        poles = match_poles(m, 2).poles
        assert abs(poles[0]) < abs(poles[1])

    def test_reduction_finds_dominant(self):
        # Fitting order 1 to a 2-pole response lands near the dominant pole
        # (pulled somewhat toward the fast pole by its residue: the q = 1
        # pole is Σk / Σ(k/|p|), an area-preserving average).
        m = moments_of([-1e9, -50e9], [4.0, 1.0], 3)
        result = match_poles(m[:2], 1)
        assert result.poles[0].real == pytest.approx(-1.244e9, rel=1e-3)

    def test_stability_flag(self):
        stable = match_poles(moments_of([-1e9], [1.0], 1), 1)
        assert stable.is_stable


class TestScaling:
    def test_choose_scale_matches_eq47(self):
        m = np.array([5.0, -5e-9, 5e-18])
        assert choose_scale(m) == pytest.approx(1e9)

    def test_choose_scale_skips_zeros(self):
        m = np.array([0.0, 2e-9, -4e-18])
        assert choose_scale(m) == pytest.approx(0.5e9)

    def test_choose_scale_degenerate(self):
        assert choose_scale(np.array([0.0, 0.0, 0.0])) == 1.0

    def test_scale_moments_formula(self):
        m = np.array([1.0, 2.0, 3.0])
        scaled = scale_moments(m, 10.0)
        np.testing.assert_allclose(scaled, [1.0, 20.0, 300.0])

    def test_scaling_invariance_of_poles(self):
        # On O(1)-scale poles (where the unscaled Hankel is healthy) the
        # γ-scaled and unscaled solves must agree.
        m = moments_of([-1.0, -4.0], [1.0, 2.0], 3)
        with_scaling = match_poles(m, 2, use_scaling=True)
        without = match_poles(m, 2, use_scaling=False)
        np.testing.assert_allclose(
            np.sort(with_scaling.poles.real),
            np.sort(without.poles.real),
            rtol=1e-6,
        )

    def test_scaling_rescues_high_order_nanosecond_moments(self):
        # Unscaled moments of a ns circuit span ~70 decades by order 4;
        # the Hankel determinant underflows without γ-scaling.
        poles = [-1e9, -3e9, -9e9, -3e10]
        m = moments_of(poles, [4.0, 1.0, 0.5, 0.2], 7)
        scaled = match_poles(m, 4, use_scaling=True)
        np.testing.assert_allclose(
            np.sort(scaled.poles.real), np.sort(poles), rtol=1e-5
        )
        with pytest.raises(MomentMatrixError):
            match_poles(m, 4, use_scaling=False)


class TestFailureModes:
    def test_too_few_moments(self):
        with pytest.raises(MomentMatrixError, match="needs"):
            match_poles(np.array([1.0, 2.0]), 2)

    def test_singular_when_overspecified(self):
        # A pure 1-pole sequence cannot support a 2-pole match.
        m = moments_of([-1e9], [5.0], 3)
        with pytest.raises(MomentMatrixError):
            match_poles(m, 2)

    def test_characteristic_polynomial_direct(self):
        # Single pole at −2: uniform sequence μ = [−k, m0, …].
        m = moments_of([-2.0], [3.0], 2)
        sequence = hankel_sequence(scale_moments(m, 1.0))
        a, condition = characteristic_polynomial(sequence, 1)
        # a0 + z = 0 → z = −a0 = −1/p = 0.5.
        assert a[0] == pytest.approx(0.5)
        assert condition >= 1.0

    def test_root_at_zero_rejected(self):
        with pytest.raises(MomentMatrixError):
            poles_from_characteristic(np.array([0.0, 1.0]))

    def test_condition_number_reported(self):
        m = moments_of([-1e9, -2e9], [1.0, 1.0], 3)
        result = match_poles(m, 2)
        assert np.isfinite(result.condition_number)
